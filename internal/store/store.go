// Package store persists the library's search accelerators — the truss
// decomposition and edge supports, the TSD and GCT indexes, the per-k
// rankings of every measure, and the graph's own CSR arrays — in one
// versioned binary file, so a serving process can warm start from disk
// instead of paying the full build cost on every boot.
//
// File layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "TDIX"
//	4       4     format version (currently 3)
//	8       32    SHA-256 fingerprint of the graph the indexes were built from
//	40      4     section count
//	44      28*c  table of contents: {id u32, measure u32, crc32c u32, offset u64, length u64}
//	...           section payloads, in TOC order, each starting 8-byte aligned
//
// Every section is independently addressable (offset + length) and
// checksummed (CRC-32C over the payload), so a reader can load exactly the
// indexes a query workload needs and detect bit rot in any of them. The
// fingerprint binds the file to one graph: OpenFile refuses a file whose
// fingerprint does not match the graph it is asked to serve, returning a
// *FingerprintError (errors.Is(err, ErrStaleIndex)) so callers can fall
// back to a rebuild.
//
// Format v3 payloads are flat slabs of fixed-width little-endian arrays
// (see v3.go): section offsets and every array inside a section are 8-byte
// aligned, so a reader can syscall.Mmap the file once and serve
// []int32/[]int64 views straight out of the page cache with zero decode —
// that is what OpenFile does by default on supported platforms. Format v2
// tagged every TOC entry with the diversity measure the section belongs to
// (0 = truss, 1 = component, 2 = core); v3 keeps the tagged TOC and adds
// the supports and graph sections. v1 and v2 files still load, through the
// decode path only.
//
// Compatibility policy: the format version is bumped on any layout change;
// readers accept exactly the versions they know (currently 1 through 3)
// and reject the rest with *VersionError rather than guessing. Unknown
// section IDs (or measure tags) inside a known version are skipped, so
// minor additions do not force a version bump.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"trussdiv/internal/core"
	"trussdiv/internal/graph"
)

const (
	// Magic identifies a trussdiv index store file ("TDIX" on disk).
	Magic = uint32(0x58494454)
	// Version is the current format version; see the package comment for
	// the compatibility policy. Version 1 files (no measure tags in the
	// TOC) and version 2 files (no supports/graph sections, non-slab
	// payloads) are still read through the decode path.
	Version = uint32(3)
	// minVersion is the oldest format this reader still accepts.
	minVersion = uint32(1)
	// FileName is the conventional file name inside an index directory.
	FileName = "indexes.tdx"

	headerSize     = 44
	tocEntrySize   = 28 // v2+: {id, measure, crc, offset, length}
	tocEntrySizeV1 = 24 // v1: {id, crc, offset, length}, measure implied truss
	// maxSections bounds the TOC a reader will accept; the format defines
	// seven section IDs across three measures, so anything much larger is a
	// corrupt header.
	maxSections = 64
)

// Section identifies one independently loadable part of an index file.
type Section uint32

const (
	// SecTruss is the global truss decomposition: one int32 trussness per
	// edge, indexed by edge ID.
	SecTruss Section = 1
	// SecTSD is the TSD index: a core stream serialization in v1/v2 files,
	// a flat slab (v3.go) since v3.
	SecTSD Section = 2
	// SecGCT is the GCT index, serialized like SecTSD.
	SecGCT Section = 3
	// SecRankings is a per-k vertex ranking set; the measure tag in the TOC
	// says which measure it ranks (untagged/truss = the hybrid engine's).
	SecRankings Section = 4
	// SecEpoch is the epoch counter of the snapshot the file was persisted
	// from (8 bytes, little-endian), so a warm start resumes the version
	// numbering of an updated graph instead of restarting at 1.
	SecEpoch Section = 5
	// SecSupports is the global edge support array: one int32 per edge,
	// parallel to SecTruss. Persisting it (since v3) lets a warm-started DB
	// repair the decomposition incrementally on the first Apply instead of
	// rebuilding. Readers that predate it skip it as an unknown section.
	SecSupports Section = 6
	// SecGraph is the graph's own CSR arrays (off/adj/eid/edges) as a flat
	// slab (since v3): replicas can mmap the topology itself instead of
	// each materializing a heap copy, and OpenGraph can boot from the store
	// alone.
	SecGraph Section = 7
	// SecPFree is the parameter-free engine's ranking for one measure (the
	// measure tag says which, truss included): the canonical pfree score
	// list as a flat slab, zero scores omitted. Readers that predate it
	// skip it as an unknown section.
	SecPFree Section = 8
)

// Measure tags on TOC entries, binding a section to the diversity
// measure it accelerates. Truss is tag 0, so a v1 file's untagged
// sections are exactly the truss sections a v1 writer meant.
const (
	measureCodeTruss     = uint32(0)
	measureCodeComponent = uint32(1)
	measureCodeCore      = uint32(2)
)

// measureCode maps a measure to its on-disk tag (truss for anything
// unknown — writers only emit known measures).
func measureCode(m core.Measure) uint32 {
	switch m.Normalize() {
	case core.MeasureComponent:
		return measureCodeComponent
	case core.MeasureCore:
		return measureCodeCore
	}
	return measureCodeTruss
}

// measureFromCode maps an on-disk tag back; ok is false for tags this
// reader does not know (sections from a newer writer, skipped).
func measureFromCode(c uint32) (core.Measure, bool) {
	switch c {
	case measureCodeTruss:
		return core.MeasureTruss, true
	case measureCodeComponent:
		return core.MeasureComponent, true
	case measureCodeCore:
		return core.MeasureCore, true
	}
	return "", false
}

// SectionRef identifies one section instance in a file: the section kind
// plus the measure it is tagged with.
type SectionRef struct {
	Section Section
	Measure core.Measure
}

// String names the section instance for error messages and status
// listings: truss-measure sections keep their bare v1 names ("tsd"),
// other measures are suffixed ("rankings@component").
func (r SectionRef) String() string {
	if r.Measure.Normalize() == core.MeasureTruss {
		return r.Section.String()
	}
	return r.Section.String() + "@" + string(r.Measure)
}

// String names the section for error messages.
func (s Section) String() string {
	switch s {
	case SecTruss:
		return "truss"
	case SecTSD:
		return "tsd"
	case SecGCT:
		return "gct"
	case SecRankings:
		return "rankings"
	case SecEpoch:
		return "epoch"
	case SecSupports:
		return "supports"
	case SecGraph:
		return "graph"
	case SecPFree:
		return "pfree"
	}
	return fmt.Sprintf("section(%d)", uint32(s))
}

// knownSections lists every section ID this reader understands, in the
// canonical listing order.
var knownSections = []Section{SecTruss, SecSupports, SecTSD, SecGCT, SecRankings, SecPFree, SecEpoch, SecGraph}

// Sentinel errors, each matched by errors.Is against the typed error that
// carries the details.
var (
	// ErrNotIndexFile reports a file that does not start with the store
	// magic — not a trussdiv index at all.
	ErrNotIndexFile = errors.New("store: not a trussdiv index file")
	// ErrVersion reports a format version this reader does not support;
	// the concrete error is *VersionError.
	ErrVersion = errors.New("store: unsupported index format version")
	// ErrStaleIndex reports a fingerprint mismatch — the file was built
	// from a different graph; the concrete error is *FingerprintError.
	ErrStaleIndex = errors.New("store: index file does not match the graph")
	// ErrCorrupt reports a structurally damaged file (truncation, bad
	// checksum, impossible sizes); the concrete error is *CorruptError.
	ErrCorrupt = errors.New("store: corrupt index file")
)

// VersionError reports an index file written by an incompatible format
// version.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("store: index format version %d, this reader supports %d through %d",
		e.Got, minVersion, e.Want)
}

// Is makes errors.Is(err, ErrVersion) match.
func (e *VersionError) Is(target error) bool { return target == ErrVersion }

// FingerprintError reports an index file built from a different graph than
// the one it is being opened against.
type FingerprintError struct {
	Got, Want [32]byte
}

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("store: index fingerprint %x does not match graph fingerprint %x",
		e.Got[:8], e.Want[:8])
}

// Is makes errors.Is(err, ErrStaleIndex) match.
func (e *FingerprintError) Is(target error) bool { return target == ErrStaleIndex }

// CorruptError reports structural damage: a truncated file, a checksum
// mismatch, or a section whose contents cannot describe the graph.
type CorruptError struct {
	Section Section // 0 when the damage is in the header or TOC
	Reason  string
	Err     error // underlying cause, when one exists
}

func (e *CorruptError) Error() string {
	where := "header"
	if e.Section != 0 {
		where = e.Section.String() + " section"
	}
	msg := fmt.Sprintf("store: corrupt index file: %s: %s", where, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Is makes errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Unwrap exposes the underlying cause to errors.Is/As chains.
func (e *CorruptError) Unwrap() error { return e.Err }

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint hashes the graph structure (vertex count, edge count, and
// the canonical edge list) so an index file can prove it was built from
// the same graph it is asked to serve.
func Fingerprint(g *graph.Graph) [32]byte { return g.Fingerprint() }

// PathIn returns the conventional index file path inside dir.
func PathIn(dir string) string { return filepath.Join(dir, FileName) }

// Indexes bundles the sections a file can hold. Nil fields are simply
// absent: Write persists only what is present, and ReadAll returns nil for
// sections the file does not contain. (The graph's CSR section is not part
// of this bundle — Write derives it from the graph itself.)
type Indexes struct {
	// Tau is the global truss decomposition, indexed by edge ID.
	Tau []int32
	// Sup is the global edge support array, parallel to Tau. Persisted
	// since v3 so a warm start can repair incrementally.
	Sup []int32
	// TSD is the per-vertex maximum-spanning-forest index (paper §5).
	TSD *core.TSDIndex
	// GCT is the compressed supernode/superedge index (paper §6).
	GCT *core.GCTIndex
	// Rankings are the hybrid engine's per-k vertex rankings under the
	// truss measure (Rankings[k] is sorted by score descending, vertex
	// ascending).
	Rankings [][]core.VertexScore
	// MeasureRankings are the per-k rankings of the non-truss measures
	// ("component", "core"), in the same shape as Rankings; each present
	// measure becomes one measure-tagged rankings section. The truss
	// rankings stay in Rankings.
	MeasureRankings map[core.Measure][][]core.VertexScore
	// PFree holds the parameter-free engine's canonical ranking per
	// measure (all three measures, truss included); each present measure
	// becomes one measure-tagged pfree section. An empty non-nil ranking
	// is persisted too — "nobody scores" is a prepared answer.
	PFree map[core.Measure][]core.VertexScore
	// Epoch is the snapshot version the indexes describe; 0 means "not
	// recorded" and writes no section.
	Epoch uint64
}

// Write serializes the present sections of ix in format v3, fingerprinted
// against g, and returns the bytes written. The graph's own CSR section is
// always included; every payload starts on an 8-byte file offset so a
// mmap reader can serve views in place.
func Write(w io.Writer, g *graph.Graph, ix Indexes) (int64, error) {
	type section struct {
		id      Section
		measure uint32
		payload []byte
	}
	var secs []section
	if ix.Tau != nil {
		if len(ix.Tau) != g.M() {
			return 0, fmt.Errorf("store: truss decomposition has %d entries, graph has %d edges",
				len(ix.Tau), g.M())
		}
		secs = append(secs, section{SecTruss, measureCodeTruss, encodeInt32s(ix.Tau)})
	}
	if ix.Sup != nil {
		if len(ix.Sup) != g.M() {
			return 0, fmt.Errorf("store: support array has %d entries, graph has %d edges",
				len(ix.Sup), g.M())
		}
		secs = append(secs, section{SecSupports, measureCodeTruss, encodeInt32s(ix.Sup)})
	}
	if ix.TSD != nil {
		secs = append(secs, section{SecTSD, measureCodeTruss, encodeTSDSlab(ix.TSD)})
	}
	if ix.GCT != nil {
		secs = append(secs, section{SecGCT, measureCodeTruss, encodeGCTSlab(ix.GCT)})
	}
	if ix.Rankings != nil {
		payload, err := encodeRankingsSlab(ix.Rankings, g.N())
		if err != nil {
			return 0, err
		}
		secs = append(secs, section{SecRankings, measureCodeTruss, payload})
	}
	// Per-measure ranking sections, in fixed measure order so the file
	// layout is deterministic.
	for _, m := range core.AllMeasures() {
		if m == core.MeasureTruss {
			continue // truss rankings travel in ix.Rankings
		}
		perK, ok := ix.MeasureRankings[m]
		if !ok || perK == nil {
			continue
		}
		payload, err := encodeRankingsSlab(perK, g.N())
		if err != nil {
			return 0, err
		}
		secs = append(secs, section{SecRankings, measureCode(m), payload})
	}
	// Parameter-free ranking sections, one per present measure (truss
	// included here — pfree's truss ranking has no other home), again in
	// fixed measure order.
	for _, m := range core.AllMeasures() {
		ranked, ok := ix.PFree[m]
		if !ok || ranked == nil {
			continue
		}
		payload, err := encodePFreeSlab(ranked, g.N())
		if err != nil {
			return 0, err
		}
		secs = append(secs, section{SecPFree, measureCode(m), payload})
	}
	if ix.Epoch != 0 {
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, ix.Epoch)
		secs = append(secs, section{SecEpoch, measureCodeTruss, payload})
	}
	secs = append(secs, section{SecGraph, measureCodeTruss, encodeGraphSlab(g)})

	fp := Fingerprint(g)
	header := make([]byte, headerSize+tocEntrySize*len(secs))
	binary.LittleEndian.PutUint32(header[0:4], Magic)
	binary.LittleEndian.PutUint32(header[4:8], Version)
	copy(header[8:40], fp[:])
	binary.LittleEndian.PutUint32(header[40:44], uint32(len(secs)))
	offset := align8(len(header))
	for i, s := range secs {
		e := header[headerSize+tocEntrySize*i:]
		binary.LittleEndian.PutUint32(e[0:4], uint32(s.id))
		binary.LittleEndian.PutUint32(e[4:8], s.measure)
		binary.LittleEndian.PutUint32(e[8:12], crc32.Checksum(s.payload, crcTable))
		binary.LittleEndian.PutUint64(e[12:20], uint64(offset))
		binary.LittleEndian.PutUint64(e[20:28], uint64(len(s.payload)))
		offset = align8(offset + len(s.payload))
	}

	var pad [8]byte
	written := int64(0)
	emit := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		return err
	}
	if err := emit(header); err != nil {
		return written, err
	}
	for _, s := range secs {
		if gap := align8(int(written)) - int(written); gap > 0 {
			if err := emit(pad[:gap]); err != nil {
				return written, err
			}
		}
		if err := emit(s.payload); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Save atomically writes the index file at path (creating parent
// directories as needed): the bytes land in a temporary sibling first and
// replace path only on success, so readers never observe a half-written
// file. A mapping held by an already-open File is unaffected: the rename
// replaces the inode, never rewrites it.
func Save(path string, g *graph.Graph, ix Indexes) error {
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := Write(tmp, g, ix); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// --- legacy (v1/v2) payload codecs, still used by the decode read path ---

func encodeInt32s(vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func decodeInt32s(payload []byte) []int32 {
	out := make([]int32, len(payload)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out
}

// decodeRankings reads the v1/v2 rankings payload: maxK u32, then for each
// k in [2, maxK] a u32 count followed by count {vertex i32, score i32}
// pairs in ranking order.
func decodeRankings(payload []byte, n int) ([][]core.VertexScore, error) {
	corrupt := func(reason string) error {
		return &CorruptError{Section: SecRankings, Reason: reason}
	}
	if len(payload) < 4 {
		return nil, corrupt("missing maxK")
	}
	pos := 0
	nextU32 := func() uint32 {
		v := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		return v
	}
	maxK := int(nextU32())
	if maxK < 2 || maxK > n+2 {
		return nil, corrupt(fmt.Sprintf("implausible maxK %d for %d vertices", maxK, n))
	}
	perK := make([][]core.VertexScore, maxK+1)
	for k := 2; k <= maxK; k++ {
		if pos+4 > len(payload) {
			return nil, corrupt(fmt.Sprintf("truncated before ranking k=%d", k))
		}
		count := int(nextU32())
		if count > n {
			return nil, corrupt(fmt.Sprintf("ranking k=%d claims %d entries for %d vertices", k, count, n))
		}
		if pos+8*count > len(payload) {
			return nil, corrupt(fmt.Sprintf("truncated inside ranking k=%d", k))
		}
		list := make([]core.VertexScore, count)
		for i := range list {
			v := int32(nextU32())
			score := int32(nextU32())
			if v < 0 || int(v) >= n {
				return nil, corrupt(fmt.Sprintf("ranking k=%d entry %d: vertex %d out of range", k, i, v))
			}
			list[i] = core.VertexScore{V: v, Score: int(score)}
		}
		perK[k] = list
	}
	if pos != len(payload) {
		return nil, corrupt(fmt.Sprintf("%d trailing bytes", len(payload)-pos))
	}
	return perK, nil
}
