// Package store persists the library's search accelerators — the truss
// decomposition, the TSD and GCT indexes, and the hybrid engine's per-k
// rankings — in one versioned binary file, so a serving process can warm
// start from disk instead of paying the full build cost on every boot.
//
// File layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "TDIX"
//	4       4     format version (currently 2)
//	8       32    SHA-256 fingerprint of the graph the indexes were built from
//	40      4     section count
//	44      28*c  table of contents: {id u32, measure u32, crc32c u32, offset u64, length u64}
//	...           section payloads, in TOC order
//
// Every section is independently addressable (offset + length) and
// checksummed (CRC-32C over the payload), so a reader can load exactly the
// indexes a query workload needs and detect bit rot in any of them. The
// fingerprint binds the file to one graph: Open refuses a file whose
// fingerprint does not match the graph it is asked to serve, returning a
// *FingerprintError (errors.Is(err, ErrStaleIndex)) so callers can fall
// back to a rebuild.
//
// Format v2 tags every TOC entry with the diversity measure the section
// belongs to (0 = truss, 1 = component, 2 = core), so one file carries
// the accelerators of every measure the DB serves: the truss sections
// (decomposition, TSD, GCT, hybrid rankings) under measure 0, and per-k
// ranking sections for the component and core measures under their own
// tags. Version-1 files — whose 24-byte TOC entries predate the tag —
// still load, with every section interpreted as measure=truss, exactly
// what a v1 writer meant.
//
// Compatibility policy: the format version is bumped on any layout change;
// readers accept exactly the versions they know (currently 1 and 2) and
// reject the rest with *VersionError rather than guessing. Unknown section
// IDs (or measure tags) inside a known version are skipped, so minor
// additions do not force a version bump.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"trussdiv/internal/core"
	"trussdiv/internal/graph"
)

const (
	// Magic identifies a trussdiv index store file ("TDIX" on disk).
	Magic = uint32(0x58494454)
	// Version is the current format version; see the package comment for
	// the compatibility policy. Version 1 files (no measure tags in the
	// TOC) are still read, as measure=truss.
	Version = uint32(2)
	// minVersion is the oldest format this reader still accepts.
	minVersion = uint32(1)
	// FileName is the conventional file name inside an index directory.
	FileName = "indexes.tdx"

	headerSize     = 44
	tocEntrySize   = 28 // v2: {id, measure, crc, offset, length}
	tocEntrySizeV1 = 24 // v1: {id, crc, offset, length}, measure implied truss
	// maxSections bounds the TOC a reader will accept; the format defines
	// five section IDs across three measures, so anything much larger is a
	// corrupt header.
	maxSections = 64
)

// Section identifies one independently loadable part of an index file.
type Section uint32

const (
	// SecTruss is the global truss decomposition: one int32 trussness per
	// edge, indexed by edge ID.
	SecTruss Section = 1
	// SecTSD is the TSD index in its core serialization.
	SecTSD Section = 2
	// SecGCT is the GCT index in its core serialization.
	SecGCT Section = 3
	// SecRankings is the hybrid engine's per-k vertex rankings.
	SecRankings Section = 4
	// SecEpoch is the epoch counter of the snapshot the file was persisted
	// from (8 bytes, little-endian), so a warm start resumes the version
	// numbering of an updated graph instead of restarting at 1. Readers
	// that predate it skip it as an unknown section — no version bump.
	SecEpoch Section = 5
)

// Measure tags on TOC entries, binding a section to the diversity
// measure it accelerates. Truss is tag 0, so a v1 file's untagged
// sections are exactly the truss sections a v1 writer meant.
const (
	measureCodeTruss     = uint32(0)
	measureCodeComponent = uint32(1)
	measureCodeCore      = uint32(2)
)

// measureCode maps a measure to its on-disk tag (truss for anything
// unknown — writers only emit known measures).
func measureCode(m core.Measure) uint32 {
	switch m.Normalize() {
	case core.MeasureComponent:
		return measureCodeComponent
	case core.MeasureCore:
		return measureCodeCore
	}
	return measureCodeTruss
}

// measureFromCode maps an on-disk tag back; ok is false for tags this
// reader does not know (sections from a newer writer, skipped).
func measureFromCode(c uint32) (core.Measure, bool) {
	switch c {
	case measureCodeTruss:
		return core.MeasureTruss, true
	case measureCodeComponent:
		return core.MeasureComponent, true
	case measureCodeCore:
		return core.MeasureCore, true
	}
	return "", false
}

// SectionRef identifies one section instance in a file: the section kind
// plus the measure it is tagged with.
type SectionRef struct {
	Section Section
	Measure core.Measure
}

// String names the section instance for error messages and status
// listings: truss-measure sections keep their bare v1 names ("tsd"),
// other measures are suffixed ("rankings@component").
func (r SectionRef) String() string {
	if r.Measure.Normalize() == core.MeasureTruss {
		return r.Section.String()
	}
	return r.Section.String() + "@" + string(r.Measure)
}

// String names the section for error messages.
func (s Section) String() string {
	switch s {
	case SecTruss:
		return "truss"
	case SecTSD:
		return "tsd"
	case SecGCT:
		return "gct"
	case SecRankings:
		return "rankings"
	case SecEpoch:
		return "epoch"
	}
	return fmt.Sprintf("section(%d)", uint32(s))
}

// Sentinel errors, each matched by errors.Is against the typed error that
// carries the details.
var (
	// ErrNotIndexFile reports a file that does not start with the store
	// magic — not a trussdiv index at all.
	ErrNotIndexFile = errors.New("store: not a trussdiv index file")
	// ErrVersion reports a format version this reader does not support;
	// the concrete error is *VersionError.
	ErrVersion = errors.New("store: unsupported index format version")
	// ErrStaleIndex reports a fingerprint mismatch — the file was built
	// from a different graph; the concrete error is *FingerprintError.
	ErrStaleIndex = errors.New("store: index file does not match the graph")
	// ErrCorrupt reports a structurally damaged file (truncation, bad
	// checksum, impossible sizes); the concrete error is *CorruptError.
	ErrCorrupt = errors.New("store: corrupt index file")
)

// VersionError reports an index file written by an incompatible format
// version.
type VersionError struct {
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("store: index format version %d, this reader supports %d through %d",
		e.Got, minVersion, e.Want)
}

// Is makes errors.Is(err, ErrVersion) match.
func (e *VersionError) Is(target error) bool { return target == ErrVersion }

// FingerprintError reports an index file built from a different graph than
// the one it is being opened against.
type FingerprintError struct {
	Got, Want [32]byte
}

func (e *FingerprintError) Error() string {
	return fmt.Sprintf("store: index fingerprint %x does not match graph fingerprint %x",
		e.Got[:8], e.Want[:8])
}

// Is makes errors.Is(err, ErrStaleIndex) match.
func (e *FingerprintError) Is(target error) bool { return target == ErrStaleIndex }

// CorruptError reports structural damage: a truncated file, a checksum
// mismatch, or a section whose contents cannot describe the graph.
type CorruptError struct {
	Section Section // 0 when the damage is in the header or TOC
	Reason  string
	Err     error // underlying cause, when one exists
}

func (e *CorruptError) Error() string {
	where := "header"
	if e.Section != 0 {
		where = e.Section.String() + " section"
	}
	msg := fmt.Sprintf("store: corrupt index file: %s: %s", where, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Is makes errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Unwrap exposes the underlying cause to errors.Is/As chains.
func (e *CorruptError) Unwrap() error { return e.Err }

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint hashes the graph structure (vertex count, edge count, and
// the canonical edge list) so an index file can prove it was built from
// the same graph it is asked to serve.
func Fingerprint(g *graph.Graph) [32]byte {
	h := sha256.New()
	h.Write([]byte("trussdiv-graph-v1"))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(g.N()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(g.M()))
	h.Write(hdr[:])
	// Hash edges in bounded chunks: binary.Write buffers its whole
	// argument, and the full edge list of a large graph would be one
	// giant allocation.
	edges := g.Edges()
	const chunk = 1 << 16
	for len(edges) > 0 {
		n := min(len(edges), chunk)
		_ = binary.Write(h, binary.LittleEndian, edges[:n]) // sha256 writes cannot fail
		edges = edges[n:]
	}
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

// PathIn returns the conventional index file path inside dir.
func PathIn(dir string) string { return filepath.Join(dir, FileName) }

// Indexes bundles the sections a file can hold. Nil fields are simply
// absent: Write persists only what is present, and ReadAll returns nil for
// sections the file does not contain.
type Indexes struct {
	// Tau is the global truss decomposition, indexed by edge ID.
	Tau []int32
	// TSD is the per-vertex maximum-spanning-forest index (paper §5).
	TSD *core.TSDIndex
	// GCT is the compressed supernode/superedge index (paper §6).
	GCT *core.GCTIndex
	// Rankings are the hybrid engine's per-k vertex rankings under the
	// truss measure (Rankings[k] is sorted by score descending, vertex
	// ascending).
	Rankings [][]core.VertexScore
	// MeasureRankings are the per-k rankings of the non-truss measures
	// ("component", "core"), in the same shape as Rankings; each present
	// measure becomes one measure-tagged rankings section. The truss
	// rankings stay in Rankings.
	MeasureRankings map[core.Measure][][]core.VertexScore
	// Epoch is the snapshot version the indexes describe; 0 means "not
	// recorded" and writes no section.
	Epoch uint64
}

// Write serializes the present sections of ix, fingerprinted against g,
// and returns the bytes written.
func Write(w io.Writer, g *graph.Graph, ix Indexes) (int64, error) {
	type section struct {
		id      Section
		measure uint32
		payload []byte
	}
	var secs []section
	if ix.Tau != nil {
		if len(ix.Tau) != g.M() {
			return 0, fmt.Errorf("store: truss decomposition has %d entries, graph has %d edges",
				len(ix.Tau), g.M())
		}
		secs = append(secs, section{SecTruss, measureCodeTruss, encodeInt32s(ix.Tau)})
	}
	if ix.TSD != nil {
		var buf bytes.Buffer
		if _, err := ix.TSD.WriteTo(&buf); err != nil {
			return 0, fmt.Errorf("store: serialize TSD index: %w", err)
		}
		secs = append(secs, section{SecTSD, measureCodeTruss, buf.Bytes()})
	}
	if ix.GCT != nil {
		var buf bytes.Buffer
		if _, err := ix.GCT.WriteTo(&buf); err != nil {
			return 0, fmt.Errorf("store: serialize GCT index: %w", err)
		}
		secs = append(secs, section{SecGCT, measureCodeTruss, buf.Bytes()})
	}
	if ix.Rankings != nil {
		payload, err := encodeRankings(ix.Rankings, g.N())
		if err != nil {
			return 0, err
		}
		secs = append(secs, section{SecRankings, measureCodeTruss, payload})
	}
	// Per-measure ranking sections, in fixed measure order so the file
	// layout is deterministic.
	for _, m := range core.AllMeasures() {
		if m == core.MeasureTruss {
			continue // truss rankings travel in ix.Rankings
		}
		perK, ok := ix.MeasureRankings[m]
		if !ok || perK == nil {
			continue
		}
		payload, err := encodeRankings(perK, g.N())
		if err != nil {
			return 0, err
		}
		secs = append(secs, section{SecRankings, measureCode(m), payload})
	}
	if ix.Epoch != 0 {
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, ix.Epoch)
		secs = append(secs, section{SecEpoch, measureCodeTruss, payload})
	}

	fp := Fingerprint(g)
	header := make([]byte, headerSize+tocEntrySize*len(secs))
	binary.LittleEndian.PutUint32(header[0:4], Magic)
	binary.LittleEndian.PutUint32(header[4:8], Version)
	copy(header[8:40], fp[:])
	binary.LittleEndian.PutUint32(header[40:44], uint32(len(secs)))
	offset := uint64(len(header))
	for i, s := range secs {
		e := header[headerSize+tocEntrySize*i:]
		binary.LittleEndian.PutUint32(e[0:4], uint32(s.id))
		binary.LittleEndian.PutUint32(e[4:8], s.measure)
		binary.LittleEndian.PutUint32(e[8:12], crc32.Checksum(s.payload, crcTable))
		binary.LittleEndian.PutUint64(e[12:20], offset)
		binary.LittleEndian.PutUint64(e[20:28], uint64(len(s.payload)))
		offset += uint64(len(s.payload))
	}

	written := int64(0)
	n, err := w.Write(header)
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, s := range secs {
		n, err := w.Write(s.payload)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Save atomically writes the index file at path (creating parent
// directories as needed): the bytes land in a temporary sibling first and
// replace path only on success, so readers never observe a half-written
// file.
func Save(path string, g *graph.Graph, ix Indexes) error {
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := Write(tmp, g, ix); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

type tocEntry struct {
	crc    uint32
	offset uint64
	length uint64
}

// File is an opened, header-validated index file whose sections load on
// demand. Section reads reopen the file, so a File holds no descriptor
// between calls and is safe for concurrent use.
type File struct {
	path    string
	g       *graph.Graph
	version uint32
	toc     map[SectionRef]tocEntry
}

// Open validates the file at path against g: magic, format version,
// graph fingerprint, and TOC sanity. Sections are not read until
// requested. A missing file surfaces as fs.ErrNotExist; a file built from
// a different graph fails with *FingerprintError (ErrStaleIndex). Both
// current format versions are accepted: a v1 file's sections all load as
// measure=truss.
func Open(path string, g *graph.Graph) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	n, readErr := io.ReadFull(f, hdr[:])
	// Judge the magic before a short read: a random small file is "not an
	// index", while a file that starts like one but ends early is corrupt.
	if n >= 4 {
		if magic := binary.LittleEndian.Uint32(hdr[0:4]); magic != Magic {
			return nil, fmt.Errorf("%w (magic %#x)", ErrNotIndexFile, magic)
		}
	}
	if readErr != nil {
		return nil, &CorruptError{Reason: "truncated header", Err: readErr}
	}
	version := binary.LittleEndian.Uint32(hdr[4:8])
	if version < minVersion || version > Version {
		return nil, &VersionError{Got: version, Want: Version}
	}
	var fp [32]byte
	copy(fp[:], hdr[8:40])
	if want := Fingerprint(g); fp != want {
		return nil, &FingerprintError{Got: fp, Want: want}
	}
	count := binary.LittleEndian.Uint32(hdr[40:44])
	if count > maxSections {
		return nil, &CorruptError{Reason: fmt.Sprintf("implausible section count %d", count)}
	}
	entrySize := tocEntrySize
	if version == 1 {
		entrySize = tocEntrySizeV1
	}
	tocBytes := make([]byte, entrySize*int(count))
	if _, err := io.ReadFull(f, tocBytes); err != nil {
		return nil, &CorruptError{Reason: "truncated table of contents", Err: err}
	}
	toc := make(map[SectionRef]tocEntry, count)
	for i := 0; i < int(count); i++ {
		e := tocBytes[entrySize*i:]
		id := Section(binary.LittleEndian.Uint32(e[0:4]))
		mcode := measureCodeTruss // v1 entries carry no tag: truss by definition
		if version >= 2 {
			mcode = binary.LittleEndian.Uint32(e[4:8])
			e = e[4:] // the remaining fields line up with the v1 layout
		}
		entry := tocEntry{
			crc:    binary.LittleEndian.Uint32(e[4:8]),
			offset: binary.LittleEndian.Uint64(e[8:16]),
			length: binary.LittleEndian.Uint64(e[16:24]),
		}
		// Compare without summing: offset+length can wrap in uint64, and a
		// wrapped sum would wave a huge length through to make([]byte, n).
		size := uint64(st.Size())
		if entry.length > size || entry.offset > size-entry.length || entry.offset < headerSize {
			return nil, &CorruptError{Section: id,
				Reason: fmt.Sprintf("section extends beyond the file (offset %d, length %d, file %d)",
					entry.offset, entry.length, st.Size())}
		}
		measure, knownMeasure := measureFromCode(mcode)
		if !knownMeasure {
			// A measure tag from a newer writer: skip the section, keep the
			// file, same policy as unknown section IDs.
			continue
		}
		switch id {
		case SecTruss, SecTSD, SecGCT, SecRankings, SecEpoch:
			ref := SectionRef{Section: id, Measure: measure}
			if _, dup := toc[ref]; dup {
				return nil, &CorruptError{Section: id, Reason: "duplicate section"}
			}
			toc[ref] = entry
		default:
			// Unknown sections within a known version are additions from a
			// newer writer; skip them rather than failing the whole file.
		}
	}
	return &File{path: path, g: g, version: version, toc: toc}, nil
}

// Version reports the format version the file was written with.
func (f *File) Version() uint32 { return f.version }

// Path returns the file's location on disk.
func (f *File) Path() string { return f.path }

// Has reports whether the file contains the truss-measure section s
// (the v1 notion of presence); use HasMeasure for tagged sections.
func (f *File) Has(s Section) bool {
	return f.HasMeasure(s, core.MeasureTruss)
}

// HasMeasure reports whether the file contains section s tagged with
// measure m.
func (f *File) HasMeasure(s Section, m core.Measure) bool {
	_, ok := f.toc[SectionRef{Section: s, Measure: m.Normalize()}]
	return ok
}

// Sections lists the recognized section instances present in the file:
// truss sections in ID order first (the v1 listing), then the tagged
// sections of the other measures in measure order.
func (f *File) Sections() []SectionRef {
	var out []SectionRef
	for _, m := range core.AllMeasures() {
		for _, s := range []Section{SecTruss, SecTSD, SecGCT, SecRankings, SecEpoch} {
			if f.HasMeasure(s, m) {
				out = append(out, SectionRef{Section: s, Measure: m})
			}
		}
	}
	return out
}

// section reads and checksum-verifies one truss-tagged section's
// payload, or returns (nil, nil) when the section is absent.
func (f *File) section(s Section) ([]byte, error) {
	return f.sectionMeasure(s, core.MeasureTruss)
}

// sectionMeasure reads and checksum-verifies one section's payload, or
// returns (nil, nil) when the section is absent.
func (f *File) sectionMeasure(s Section, m core.Measure) ([]byte, error) {
	entry, ok := f.toc[SectionRef{Section: s, Measure: m.Normalize()}]
	if !ok {
		return nil, nil
	}
	fd, err := os.Open(f.path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	payload := make([]byte, entry.length)
	if _, err := fd.ReadAt(payload, int64(entry.offset)); err != nil {
		return nil, &CorruptError{Section: s, Reason: "truncated payload", Err: err}
	}
	if crc := crc32.Checksum(payload, crcTable); crc != entry.crc {
		return nil, &CorruptError{Section: s,
			Reason: fmt.Sprintf("checksum mismatch (file %#x, computed %#x)", entry.crc, crc)}
	}
	return payload, nil
}

// Tau loads the global truss decomposition, or (nil, nil) when absent.
func (f *File) Tau() ([]int32, error) {
	payload, err := f.section(SecTruss)
	if payload == nil || err != nil {
		return nil, err
	}
	if len(payload) != 4*f.g.M() {
		return nil, &CorruptError{Section: SecTruss,
			Reason: fmt.Sprintf("%d payload bytes for %d edges", len(payload), f.g.M())}
	}
	return decodeInt32s(payload), nil
}

// TSD loads the TSD index bound to the file's graph, or (nil, nil) when
// absent.
func (f *File) TSD() (*core.TSDIndex, error) {
	payload, err := f.section(SecTSD)
	if payload == nil || err != nil {
		return nil, err
	}
	idx, err := core.ReadTSDIndex(bytes.NewReader(payload), f.g)
	if err != nil {
		return nil, &CorruptError{Section: SecTSD, Reason: "decode failed", Err: err}
	}
	return idx, nil
}

// GCT loads the GCT index bound to the file's graph, or (nil, nil) when
// absent.
func (f *File) GCT() (*core.GCTIndex, error) {
	payload, err := f.section(SecGCT)
	if payload == nil || err != nil {
		return nil, err
	}
	idx, err := core.ReadGCTIndex(bytes.NewReader(payload), f.g)
	if err != nil {
		return nil, &CorruptError{Section: SecGCT, Reason: "decode failed", Err: err}
	}
	return idx, nil
}

// Epoch loads the recorded snapshot epoch, or (0, nil) when absent.
func (f *File) Epoch() (uint64, error) {
	payload, err := f.section(SecEpoch)
	if payload == nil || err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, &CorruptError{Section: SecEpoch,
			Reason: fmt.Sprintf("%d payload bytes, want 8", len(payload))}
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// Rankings loads the truss-measure (hybrid) per-k rankings, or
// (nil, nil) when absent.
func (f *File) Rankings() ([][]core.VertexScore, error) {
	payload, err := f.section(SecRankings)
	if payload == nil || err != nil {
		return nil, err
	}
	return decodeRankings(payload, f.g.N())
}

// MeasureRankings loads the per-k rankings of measure m, or (nil, nil)
// when the file has no rankings section tagged with m. For MeasureTruss
// this is Rankings.
func (f *File) MeasureRankings(m core.Measure) ([][]core.VertexScore, error) {
	payload, err := f.sectionMeasure(SecRankings, m)
	if payload == nil || err != nil {
		return nil, err
	}
	return decodeRankings(payload, f.g.N())
}

// ReadAll opens path against g and loads every section it contains.
func ReadAll(path string, g *graph.Graph) (*Indexes, error) {
	f, err := Open(path, g)
	if err != nil {
		return nil, err
	}
	var ix Indexes
	if ix.Tau, err = f.Tau(); err != nil {
		return nil, err
	}
	if ix.TSD, err = f.TSD(); err != nil {
		return nil, err
	}
	if ix.GCT, err = f.GCT(); err != nil {
		return nil, err
	}
	if ix.Rankings, err = f.Rankings(); err != nil {
		return nil, err
	}
	for _, m := range core.AllMeasures() {
		if m == core.MeasureTruss || !f.HasMeasure(SecRankings, m) {
			continue
		}
		perK, err := f.MeasureRankings(m)
		if err != nil {
			return nil, err
		}
		if ix.MeasureRankings == nil {
			ix.MeasureRankings = make(map[core.Measure][][]core.VertexScore)
		}
		ix.MeasureRankings[m] = perK
	}
	if ix.Epoch, err = f.Epoch(); err != nil {
		return nil, err
	}
	return &ix, nil
}

// --- section payload codecs ---

func encodeInt32s(vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func decodeInt32s(payload []byte) []int32 {
	out := make([]int32, len(payload)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out
}

// encodeRankings lays the per-k rankings out as: maxK u32, then for each
// k in [2, maxK] a u32 count followed by count {vertex i32, score i32}
// pairs in ranking order.
func encodeRankings(perK [][]core.VertexScore, n int) ([]byte, error) {
	maxK := len(perK) - 1
	if maxK < 2 {
		maxK = 2
	}
	var buf bytes.Buffer
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	putU32(uint32(maxK))
	for k := 2; k <= maxK; k++ {
		var list []core.VertexScore
		if k < len(perK) {
			list = perK[k]
		}
		if len(list) > n {
			return nil, fmt.Errorf("store: ranking for k=%d has %d entries, graph has %d vertices",
				k, len(list), n)
		}
		putU32(uint32(len(list)))
		for _, e := range list {
			putU32(uint32(e.V))
			putU32(uint32(int32(e.Score)))
		}
	}
	return buf.Bytes(), nil
}

func decodeRankings(payload []byte, n int) ([][]core.VertexScore, error) {
	corrupt := func(reason string) error {
		return &CorruptError{Section: SecRankings, Reason: reason}
	}
	if len(payload) < 4 {
		return nil, corrupt("missing maxK")
	}
	pos := 0
	nextU32 := func() uint32 {
		v := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		return v
	}
	maxK := int(nextU32())
	if maxK < 2 || maxK > n+2 {
		return nil, corrupt(fmt.Sprintf("implausible maxK %d for %d vertices", maxK, n))
	}
	perK := make([][]core.VertexScore, maxK+1)
	for k := 2; k <= maxK; k++ {
		if pos+4 > len(payload) {
			return nil, corrupt(fmt.Sprintf("truncated before ranking k=%d", k))
		}
		count := int(nextU32())
		if count > n {
			return nil, corrupt(fmt.Sprintf("ranking k=%d claims %d entries for %d vertices", k, count, n))
		}
		if pos+8*count > len(payload) {
			return nil, corrupt(fmt.Sprintf("truncated inside ranking k=%d", k))
		}
		list := make([]core.VertexScore, count)
		for i := range list {
			v := int32(nextU32())
			score := int32(nextU32())
			if v < 0 || int(v) >= n {
				return nil, corrupt(fmt.Sprintf("ranking k=%d entry %d: vertex %d out of range", k, i, v))
			}
			list[i] = core.VertexScore{V: v, Score: int(score)}
		}
		perK[k] = list
	}
	if pos != len(payload) {
		return nil, corrupt(fmt.Sprintf("%d trailing bytes", len(payload)-pos))
	}
	return perK, nil
}
