package pfree

import "testing"

// The aggregation is a pure function of the all-k vector; pin its edge
// semantics directly. Vectors are indexed by k with entries 0 and 1
// unused, matching core.ScoresAllK.
func TestScoreAndLevel(t *testing.T) {
	cases := []struct {
		name  string
		allK  []int
		score int
		level int32
	}{
		{"nil vector (no contexts)", nil, 0, 0},
		{"all zero", []int{0, 0, 0, 0}, 0, 0},
		{"one context at k=2 witnesses h=1", []int{0, 0, 1}, 1, 2},
		{"two contexts at k=2 witness h=2", []int{0, 0, 2}, 2, 2},
		{"many contexts only at k=2 still h=2", []int{0, 0, 9}, 2, 2},
		{"s(3)=3 witnesses h=3", []int{0, 0, 1, 3}, 3, 3},
		{"s(3)=2 does not reach h=3", []int{0, 0, 1, 2}, 1, 2},
		{"best level wins over lower ones", []int{0, 0, 5, 3, 4, 2}, 4, 4},
		{"non-monotone vector: later level qualifies alone", []int{0, 0, 1, 0, 4}, 4, 4},
		{"negative entries are ignored", []int{0, 0, -1, -3}, 0, 0},
	}
	for _, tc := range cases {
		if got := Score(tc.allK); got != tc.score {
			t.Errorf("%s: Score = %d, want %d", tc.name, got, tc.score)
		}
		if got := Level(tc.allK); got != tc.level {
			t.Errorf("%s: Level = %d, want %d", tc.name, got, tc.level)
		}
	}
}
