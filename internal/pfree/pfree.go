// Package pfree implements parameter-free structural diversity search:
// the sixth engine of the stack, after "Parameter-free Structural
// Diversity Search" (arXiv:1908.11612, same authors as the base paper).
//
// Every other engine answers top-r for one fixed threshold k, forcing
// users to guess a truss level before asking for diverse vertices. The
// parameter-free objective removes the guess by aggregating the whole
// per-k score vector s_m(v, ·) of a vertex into one number, an h-index
// style fixpoint over the threshold axis:
//
//	pfree(v) = max{ h >= 1 : s_m(v, max(h, 2)) >= h },  0 if no h qualifies
//
// where s_m(v, k) is the structural diversity score of v at threshold k
// under measure m (k-truss components of the ego network, connected
// components of size >= k, or k-core components). The max(h, 2) clamp
// exists because every measure's threshold axis starts at k = 2: h = 1
// ("at least one context at the weakest level") and h = 2 are both
// witnessed at level 2. A vertex is diverse parameter-freely when it has
// many contexts at a proportionally strong cohesion level — a few huge
// communities or many trivial ones both score low, exactly the
// trade-off fixed-k search forces users to navigate by hand.
//
// The discriminating level k*(v) = max(pfree(v), 2) is the threshold
// that witnesses the score; the pfree contexts of v are the measure's
// contexts at k*(v). Like every engine in this repository, answers are
// produced under the canonical total order (score descending, vertex id
// ascending), so serial, parallel, Batch, and cluster scatter-gather
// executions are byte-identical.
//
// Two execution paths produce identical bytes: a prepared path that
// reads a precomputed pfree ranking (derived in O(table) from the per-k
// rankings the hybrid/baseline engines already build, or loaded from the
// store's pfree slab), and an online fallback that scores one ego
// network at a time through core.ScoresAllK for cold or small graphs.
package pfree

import (
	"context"

	"trussdiv/internal/core"
	"trussdiv/internal/graph"
)

// Score aggregates one vertex's per-k score vector (as returned by
// core.ScoresAllK: indexed by k, entries 0 and 1 unused, nil when the
// vertex has no contexts at any level) into its parameter-free
// diversity score. Per level: k == 2 witnesses h = min(s, 2); a level
// k >= 3 witnesses h = k iff s >= k. The score is the maximum witnessed
// h over all levels, 0 when none qualifies.
func Score(allK []int) int {
	best := 0
	for k := 2; k < len(allK); k++ {
		s := allK[k]
		if s <= 0 {
			continue
		}
		h := 0
		switch {
		case k == 2 && s >= 2:
			h = 2
		case k == 2:
			h = 1
		case s >= k:
			h = k
		}
		if h > best {
			best = h
		}
	}
	return best
}

// Level returns the discriminating level k*(v) = max(Score, 2) — the
// threshold that witnesses the parameter-free score and at which the
// pfree contexts of the vertex live. 0 when the score is 0 (no
// contexts at any level).
func Level(allK []int) int32 {
	h := Score(allK)
	if h == 0 {
		return 0
	}
	if h < 2 {
		return 2
	}
	return int32(h)
}

// ScoreAt computes the parameter-free score of one vertex online: one
// ego-network extraction and one all-k decomposition under measure m.
func ScoreAt(g *graph.Graph, v int32, m core.Measure) int {
	return Score(core.ScoresAllK(g, v, m))
}

// ContextsAt recovers the pfree contexts of one vertex online: the
// measure's contexts at the discriminating level. Nil when the score
// is 0.
func ContextsAt(g *graph.Graph, v int32, m core.Measure) [][]int32 {
	lvl := Level(core.ScoresAllK(g, v, m))
	if lvl == 0 {
		return nil
	}
	return core.NewMeasureScorer(g, m).Contexts(v, lvl)
}

// BuildRanking scores every vertex online and returns the canonical
// pfree ranking under measure m: sorted score descending / id
// ascending, zero scores omitted. The result is always non-nil (an
// empty ranking is still a prepared ranking — "nobody scores" is an
// answer, not an absence).
func BuildRanking(g *graph.Graph, m core.Measure) []core.VertexScore {
	scorer := core.NewVertexScorer(g, m)
	list := make([]core.VertexScore, 0)
	for v := int32(0); int(v) < g.N(); v++ {
		// ScoresAllK hands back scratch-owned storage; Score reads it
		// before the next iteration overwrites it.
		if s := Score(scorer.ScoresAllK(v)); s > 0 {
			list = append(list, core.VertexScore{V: v, Score: s})
		}
	}
	core.SortCanonical(list)
	return list
}

// RankingFromPerK derives the pfree ranking from per-k rankings already
// built for a fixed-k engine (hybrid's truss rankings, or the
// component/core tables of core.BuildMeasureRankings): perK[k] lists
// the vertices with s(v, k) > 0 canonically. Because every listed
// (v, k, s) entry witnesses exactly the per-level h of Score, one
// O(total entries) sweep replaces a full per-vertex ego pass — the
// prepared fast path. Byte-identical to BuildRanking on the same graph.
func RankingFromPerK(perK [][]core.VertexScore) []core.VertexScore {
	best := make(map[int32]int)
	for k := 2; k < len(perK); k++ {
		for _, e := range perK[k] {
			h := 0
			switch {
			case k == 2 && e.Score >= 2:
				h = 2
			case k == 2 && e.Score >= 1:
				h = 1
			case k >= 3 && e.Score >= k:
				h = k
			}
			if h > best[e.V] {
				best[e.V] = h
			}
		}
	}
	list := make([]core.VertexScore, 0, len(best))
	for v, s := range best {
		list = append(list, core.VertexScore{V: v, Score: s})
	}
	core.SortCanonical(list)
	return list
}

// PatchRanking splices the affected vertices of an edge-update batch
// into an existing pfree ranking: re-score exactly the affected set
// online, merge canonically with the unaffected survivors. O(affected)
// ego decompositions instead of a full rebuild; byte-identical to
// BuildRanking on the new graph. Never aliases old.
func PatchRanking(g *graph.Graph, m core.Measure, old []core.VertexScore, affected []int32) []core.VertexScore {
	scorer := core.NewVertexScorer(g, m)
	aff := make(map[int32]bool, len(affected))
	fresh := make([]core.VertexScore, 0, len(affected))
	for _, v := range affected {
		if aff[v] {
			continue
		}
		aff[v] = true
		if s := Score(scorer.ScoresAllK(v)); s > 0 {
			fresh = append(fresh, core.VertexScore{V: v, Score: s})
		}
	}
	core.SortCanonical(fresh)
	return core.MergeRanked(old, fresh, aff)
}

// Searcher answers parameter-free top-r queries for one (graph,
// measure) pair. With a prepared ranking it is an O(r) canonical prefix
// read; without one it falls back to the online scan. Both paths answer
// byte-identically. Safe for concurrent use.
type Searcher struct {
	g      *graph.Graph
	m      core.Measure
	scorer core.DivScorer
	ranked []core.VertexScore
}

// NewSearcher builds a Searcher for measure m. ranked, when non-nil, is
// a prepared canonical pfree ranking (BuildRanking / RankingFromPerK /
// a store slab) enabling the O(r) fast path; nil selects the online
// fallback.
func NewSearcher(g *graph.Graph, m core.Measure, ranked []core.VertexScore) *Searcher {
	m = m.Normalize()
	return &Searcher{g: g, m: m, scorer: core.NewMeasureScorer(g, m), ranked: ranked}
}

// Contexts recovers the pfree contexts of one answer vertex (the
// measure's contexts at the discriminating level); nil for zero-score
// vertices. Safe for concurrent calls.
func (s *Searcher) Contexts(v int32) [][]int32 {
	lvl := Level(core.ScoresAllK(s.g, v, s.m))
	if lvl == 0 {
		return nil
	}
	return s.scorer.Contexts(v, lvl)
}

// Search answers the parameter-free top-r query. p.K is ignored — the
// objective has no threshold; validation of the remaining parameters is
// identical to the fixed-k engines'.
func (s *Searcher) Search(ctx context.Context, p core.Params) (*core.Result, *core.Stats, error) {
	p, err := p.NormalizedNoK(s.g.N())
	if err != nil {
		return nil, nil, err
	}
	if m := p.Measure.Normalize(); m != s.m {
		return nil, nil, &core.UnsupportedMeasureError{Engine: "pfree[" + string(s.m) + "]", Measure: m}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	stats := &core.Stats{}
	var answer []core.VertexScore
	if s.ranked != nil {
		answer, stats.Candidates = core.RankedAnswer(s.ranked, s.g.N(), p)
		if !p.SkipContexts {
			// Context recovery is the only decomposition work on this path.
			stats.ScoreComputations = len(answer)
		}
	} else {
		var scored int
		answer, scored, err = core.ScanCanonical(ctx, s.g.N(), p, func() func(v int32) int {
			vs := core.NewVertexScorer(s.g, s.m) // one scratch per worker
			return func(v int32) int { return Score(vs.ScoresAllK(v)) }
		})
		if err != nil {
			return nil, nil, err
		}
		stats.Candidates = scored
		stats.ScoreComputations = scored
		if !p.SkipContexts {
			stats.ScoreComputations += len(answer)
		}
	}

	res, err := core.FinishResult(ctx, answer, p, s.Contexts)
	if err != nil {
		return nil, nil, err
	}
	if p.SkipStats {
		return res, nil, nil
	}
	return res, stats, nil
}
