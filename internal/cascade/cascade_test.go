package cascade

import (
	"math/rand"
	"testing"

	"trussdiv/internal/gen"
)

func TestSimulateDeterministicEdges(t *testing.T) {
	// p=1: everything reachable activates, rounds equal BFS distance.
	g := gen.Path(5)
	ic := NewIC(g, 1.0)
	out := ic.Simulate([]int32{0}, rand.New(rand.NewSource(1)))
	if out.Count != 5 {
		t.Fatalf("activated %d, want 5", out.Count)
	}
	for v := int32(0); v < 5; v++ {
		if out.Round[v] != v {
			t.Fatalf("round[%d] = %d, want %d", v, out.Round[v], v)
		}
	}
	// p=0: only seeds activate.
	ic = NewIC(g, 0.0)
	out = ic.Simulate([]int32{2}, rand.New(rand.NewSource(1)))
	if out.Count != 1 || out.Round[2] != 0 || out.Activated(0) {
		t.Fatal("p=0 cascade should not spread")
	}
}

func TestSimulateStaysInComponent(t *testing.T) {
	g := gen.DisjointUnion(gen.Clique(5), gen.Clique(5))
	ic := NewIC(g, 1.0)
	out := ic.Simulate([]int32{0}, rand.New(rand.NewSource(2)))
	if out.Count != 5 {
		t.Fatalf("activated %d, want 5 (one component)", out.Count)
	}
	for v := int32(5); v < 10; v++ {
		if out.Activated(v) {
			t.Fatal("cascade crossed components")
		}
	}
}

func TestMonteCarloBasics(t *testing.T) {
	g := gen.Clique(6)
	ic := NewIC(g, 0.3)
	mc := ic.MonteCarlo([]int32{0}, 400, 7)
	if mc.Activation[0] != 1.0 {
		t.Fatalf("seed activation = %f, want 1", mc.Activation[0])
	}
	for v := 1; v < 6; v++ {
		if mc.Activation[v] <= 0.2 || mc.Activation[v] >= 1.0 {
			t.Fatalf("activation[%d] = %f, implausible for p=0.3 in K6", v, mc.Activation[v])
		}
	}
	if mc.MeanSpread < 2 || mc.MeanSpread > 6 {
		t.Fatalf("mean spread = %f", mc.MeanSpread)
	}
	// Determinism.
	mc2 := ic.MonteCarlo([]int32{0}, 400, 7)
	for v := range mc.Activation {
		if mc.Activation[v] != mc2.Activation[v] {
			t.Fatal("MonteCarlo not deterministic for fixed seed")
		}
	}
}

func TestActivationMonotoneInP(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 2, Cliques: 60, MinSize: 3, MaxSize: 6, Seed: 3,
	})
	seeds := []int32{0, 1, 2}
	lo := NewIC(g, 0.02).MonteCarlo(seeds, 300, 5).MeanSpread
	hi := NewIC(g, 0.2).MonteCarlo(seeds, 300, 5).MeanSpread
	if hi <= lo {
		t.Fatalf("spread not monotone in p: %.2f (p=.02) vs %.2f (p=.2)", lo, hi)
	}
}

func TestExpectedActivated(t *testing.T) {
	g := gen.Clique(4)
	mc := NewIC(g, 0.5).MonteCarlo([]int32{0}, 200, 11)
	all := mc.ExpectedActivated([]int32{0, 1, 2, 3})
	if all < 1 || all > 4 {
		t.Fatalf("expected activated = %f", all)
	}
	none := mc.ExpectedActivated(nil)
	if none != 0 {
		t.Fatalf("empty target set = %f, want 0", none)
	}
}

func TestLatencyCurve(t *testing.T) {
	g := gen.Path(6)
	ic := NewIC(g, 1.0)
	curve := ic.LatencyCurve([]int32{0}, []int32{1, 3, 5}, 50, 13)
	// Deterministic p=1 path: target 1 at round 1, 3 at round 3, 5 at 5.
	if len(curve) != 6 {
		t.Fatalf("curve length = %d, want 6", len(curve))
	}
	want := []float64{0, 1, 1, 2, 2, 3}
	for r, w := range want {
		if curve[r] != w {
			t.Fatalf("curve[%d] = %f, want %f", r, curve[r], w)
		}
	}
	// Cumulative curves never decrease.
	for r := 1; r < len(curve); r++ {
		if curve[r] < curve[r-1] {
			t.Fatal("latency curve not monotone")
		}
	}
}

func TestMaxInfluenceRIS(t *testing.T) {
	// Two communities bridged weakly; RIS with 2 seeds should pick one
	// vertex from each dense block rather than two from one.
	g := gen.DisjointUnion(gen.Clique(8), gen.Clique(8))
	seeds := MaxInfluenceRIS(g, 0.3, 2, 400, 17)
	if len(seeds) != 2 {
		t.Fatalf("seeds = %v", seeds)
	}
	if (seeds[0] < 8) == (seeds[1] < 8) {
		t.Fatalf("seeds %v landed in one component", seeds)
	}
}

func TestDegreeDiscount(t *testing.T) {
	g := gen.Star(10) // center 0 has degree 9
	seeds := DegreeDiscount(g, 1, 0.1)
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Fatalf("seeds = %v, want the hub", seeds)
	}
	seeds = DegreeDiscount(g, 3, 0.1)
	if len(seeds) != 3 {
		t.Fatalf("want 3 seeds, got %v", seeds)
	}
	// Distinct.
	if seeds[0] == seeds[1] || seeds[1] == seeds[2] {
		t.Fatal("duplicate seeds")
	}
	// Clamps at n.
	if got := DegreeDiscount(gen.Clique(3), 10, 0.1); len(got) != 3 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestRISClamp(t *testing.T) {
	g := gen.Clique(4)
	if got := MaxInfluenceRIS(g, 0.1, 10, 50, 3); len(got) != 4 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestSeedDedup(t *testing.T) {
	g := gen.Path(4)
	ic := NewIC(g, 1.0)
	out := ic.Simulate([]int32{1, 1, 1}, rand.New(rand.NewSource(3)))
	if out.Count != 4 {
		t.Fatalf("count = %d, want 4", out.Count)
	}
	if out.Round[1] != 0 {
		t.Fatal("seed round wrong")
	}
}
