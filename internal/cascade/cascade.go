// Package cascade implements the social-contagion machinery of the paper's
// effectiveness experiments (§7.2): the Independent Cascade (IC) model with
// uniform edge probabilities, Monte-Carlo estimation of activation
// probabilities and activation latency, and influence maximization for
// seed selection.
//
// The paper seeds its simulations with the IMM algorithm [37]; we
// substitute reverse-influence-sampling (RIS) greedy coverage — the
// technique IMM refines — plus a degree-discount heuristic for very large
// graphs. Undirected edges are treated as two independent directed arcs of
// the same probability, exactly as the paper describes.
package cascade

import (
	"math"
	"math/rand"
	"sort"

	"trussdiv/internal/graph"
)

// IC is an Independent Cascade process over g with uniform activation
// probability P per directed arc.
type IC struct {
	g *graph.Graph
	p float64
}

// NewIC returns an IC model (paper default p = 0.01; the case study's
// Table 5 uses p = 0.05).
func NewIC(g *graph.Graph, p float64) *IC { return &IC{g: g, p: p} }

// Graph returns the underlying graph.
func (ic *IC) Graph() *graph.Graph { return ic.g }

// Outcome is one simulated cascade. Round[v] is the BFS round at which v
// activated (0 for seeds, -1 for never).
type Outcome struct {
	Round []int32
	Count int // number of activated vertices including seeds
}

// Activated reports whether v was activated in this outcome.
func (o *Outcome) Activated(v int32) bool { return o.Round[v] >= 0 }

// Simulate runs one cascade from the given seeds using rng.
func (ic *IC) Simulate(seeds []int32, rng *rand.Rand) *Outcome {
	n := ic.g.N()
	round := make([]int32, n)
	for i := range round {
		round[i] = -1
	}
	frontier := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if round[s] < 0 {
			round[s] = 0
			frontier = append(frontier, s)
		}
	}
	count := len(frontier)
	next := make([]int32, 0, 64)
	for r := int32(1); len(frontier) > 0; r++ {
		next = next[:0]
		for _, u := range frontier {
			for _, w := range ic.g.Neighbors(u) {
				if round[w] < 0 && rng.Float64() < ic.p {
					round[w] = r
					next = append(next, w)
					count++
				}
			}
		}
		frontier, next = next, frontier
	}
	return &Outcome{Round: round, Count: count}
}

// MonteCarlo aggregates `runs` simulations.
type MonteCarlo struct {
	Runs       int
	Activation []float64 // per-vertex activation probability
	MeanRound  []float64 // mean activation round, conditioned on activation
	MeanSpread float64   // mean number of activated vertices
}

// MonteCarlo estimates activation statistics over runs cascades seeded by
// seeds, deterministically from seed.
func (ic *IC) MonteCarlo(seeds []int32, runs int, seed int64) *MonteCarlo {
	n := ic.g.N()
	rng := rand.New(rand.NewSource(seed))
	hits := make([]int64, n)
	roundSum := make([]int64, n)
	var spread int64
	for run := 0; run < runs; run++ {
		out := ic.Simulate(seeds, rng)
		spread += int64(out.Count)
		for v := 0; v < n; v++ {
			if out.Round[v] >= 0 {
				hits[v]++
				roundSum[v] += int64(out.Round[v])
			}
		}
	}
	mc := &MonteCarlo{
		Runs:       runs,
		Activation: make([]float64, n),
		MeanRound:  make([]float64, n),
		MeanSpread: float64(spread) / float64(runs),
	}
	for v := 0; v < n; v++ {
		if hits[v] > 0 {
			mc.Activation[v] = float64(hits[v]) / float64(runs)
			mc.MeanRound[v] = float64(roundSum[v]) / float64(hits[v])
		}
	}
	return mc
}

// ExpectedActivated returns the expected number of targets activated:
// the sum of activation probabilities over the target set (paper Fig. 14's
// y-axis for a top-r result list).
func (mc *MonteCarlo) ExpectedActivated(targets []int32) float64 {
	var sum float64
	for _, v := range targets {
		sum += mc.Activation[v]
	}
	return sum
}

// LatencyCurve returns, for the given targets, the expected cumulative
// number of targets activated by each round: curve[r] = Σ_t P[t active and
// round(t) <= r]. This reproduces paper Fig. 15's latency plot (rounds on
// one axis, activated count on the other).
func (ic *IC) LatencyCurve(seeds, targets []int32, runs int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	maxRound := 0
	perRun := make([][]int32, 0, runs)
	for run := 0; run < runs; run++ {
		out := ic.Simulate(seeds, rng)
		rounds := make([]int32, len(targets))
		for i, tv := range targets {
			rounds[i] = out.Round[tv]
			if int(rounds[i]) > maxRound {
				maxRound = int(rounds[i])
			}
		}
		perRun = append(perRun, rounds)
	}
	curve := make([]float64, maxRound+1)
	for _, rounds := range perRun {
		for _, rd := range rounds {
			if rd >= 0 {
				curve[rd]++
			}
		}
	}
	// Prefix-sum to cumulative, then normalize by runs.
	for r := 1; r <= maxRound; r++ {
		curve[r] += curve[r-1]
	}
	for r := range curve {
		curve[r] /= float64(runs)
	}
	return curve
}

// MaxInfluenceRIS selects `count` seeds by reverse influence sampling:
// generate `samples` random reverse-reachable sets and greedily pick the
// vertices covering the most sets. This approximates IMM [37] without its
// martingale stopping rule; for undirected IC the reverse process equals
// the forward one.
func MaxInfluenceRIS(g *graph.Graph, p float64, count, samples int, seed int64) []int32 {
	n := g.N()
	if count > n {
		count = n
	}
	rng := rand.New(rand.NewSource(seed))
	ic := NewIC(g, p)
	coverage := make([][]int32, n) // vertex -> RR-set IDs containing it
	for s := 0; s < samples; s++ {
		root := int32(rng.Intn(n))
		out := ic.Simulate([]int32{root}, rng)
		for v := 0; v < n; v++ {
			if out.Round[v] >= 0 {
				coverage[v] = append(coverage[v], int32(s))
			}
		}
	}
	covered := make([]bool, samples)
	chosen := make([]int32, 0, count)
	inAnswer := make([]bool, n)
	for len(chosen) < count {
		best, bestGain := int32(-1), -1
		for v := 0; v < n; v++ {
			if inAnswer[v] {
				continue
			}
			gain := 0
			for _, sid := range coverage[v] {
				if !covered[sid] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = int32(v), gain
			}
		}
		chosen = append(chosen, best)
		inAnswer[best] = true
		for _, sid := range coverage[best] {
			covered[sid] = true
		}
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
	return chosen
}

// DegreeDiscount is the classic cheap influence-maximization heuristic of
// Chen et al.: repeatedly pick the highest discounted-degree vertex, where
// each chosen neighbor discounts a vertex's effective degree.
func DegreeDiscount(g *graph.Graph, count int, p float64) []int32 {
	n := g.N()
	if count > n {
		count = n
	}
	dd := make([]float64, n)
	tv := make([]int, n) // chosen neighbors
	for v := 0; v < n; v++ {
		dd[v] = float64(g.Degree(int32(v)))
	}
	chosen := make([]int32, 0, count)
	inAnswer := make([]bool, n)
	for len(chosen) < count {
		best, bestVal := -1, math.Inf(-1)
		for v := 0; v < n; v++ {
			if !inAnswer[v] && dd[v] > bestVal {
				best, bestVal = v, dd[v]
			}
		}
		chosen = append(chosen, int32(best))
		inAnswer[best] = true
		for _, w := range g.Neighbors(int32(best)) {
			if inAnswer[w] {
				continue
			}
			tv[w]++
			d := float64(g.Degree(w))
			t := float64(tv[w])
			dd[w] = d - 2*t - (d-t)*t*p
		}
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
	return chosen
}
