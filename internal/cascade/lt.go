package cascade

import (
	"math/rand"

	"trussdiv/internal/graph"
)

// LT is the Linear Threshold diffusion model, the classic companion of
// Independent Cascade (Kempe, Kleinberg & Tardos [27], which the paper
// builds its contagion narrative on). Each vertex v draws a uniform
// threshold θ_v ∈ [0,1]; an inactive vertex activates once the summed
// influence weight of its active neighbors reaches θ_v. Edge weights are
// the standard 1/deg(v) normalization, so a vertex activates when at
// least a θ_v fraction of its neighbors is active.
//
// The library uses LT as a robustness check on the effectiveness
// experiments: the truss-diversity ordering of Fig. 13-14 should not be
// an artifact of the IC model.
type LT struct {
	g *graph.Graph
}

// NewLT returns a Linear Threshold model over g.
func NewLT(g *graph.Graph) *LT { return &LT{g: g} }

// Simulate runs one LT diffusion from the given seeds using rng for the
// thresholds. Rounds in the returned Outcome are LT iterations.
func (lt *LT) Simulate(seeds []int32, rng *rand.Rand) *Outcome {
	g := lt.g
	n := g.N()
	round := make([]int32, n)
	threshold := make([]float64, n)
	for v := 0; v < n; v++ {
		round[v] = -1
		threshold[v] = rng.Float64()
	}
	influence := make([]float64, n)
	frontier := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if round[s] < 0 {
			round[s] = 0
			frontier = append(frontier, s)
		}
	}
	count := len(frontier)
	next := make([]int32, 0, 64)
	for r := int32(1); len(frontier) > 0; r++ {
		next = next[:0]
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if round[w] >= 0 {
					continue
				}
				influence[w] += 1.0 / float64(g.Degree(w))
				if influence[w] >= threshold[w] {
					round[w] = r
					next = append(next, w)
					count++
				}
			}
		}
		frontier, next = next, frontier
	}
	return &Outcome{Round: round, Count: count}
}

// MonteCarlo aggregates `runs` LT diffusions, mirroring IC.MonteCarlo.
func (lt *LT) MonteCarlo(seeds []int32, runs int, seed int64) *MonteCarlo {
	n := lt.g.N()
	rng := rand.New(rand.NewSource(seed))
	hits := make([]int64, n)
	roundSum := make([]int64, n)
	var spread int64
	for run := 0; run < runs; run++ {
		out := lt.Simulate(seeds, rng)
		spread += int64(out.Count)
		for v := 0; v < n; v++ {
			if out.Round[v] >= 0 {
				hits[v]++
				roundSum[v] += int64(out.Round[v])
			}
		}
	}
	mc := &MonteCarlo{
		Runs:       runs,
		Activation: make([]float64, n),
		MeanRound:  make([]float64, n),
		MeanSpread: float64(spread) / float64(runs),
	}
	for v := 0; v < n; v++ {
		if hits[v] > 0 {
			mc.Activation[v] = float64(hits[v]) / float64(runs)
			mc.MeanRound[v] = float64(roundSum[v]) / float64(hits[v])
		}
	}
	return mc
}
