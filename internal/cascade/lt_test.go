package cascade

import (
	"math/rand"
	"testing"

	"trussdiv/internal/gen"
)

func TestLTSeedsAlwaysActive(t *testing.T) {
	g := gen.Clique(6)
	lt := NewLT(g)
	out := lt.Simulate([]int32{2, 4}, rand.New(rand.NewSource(1)))
	if out.Round[2] != 0 || out.Round[4] != 0 {
		t.Fatal("seeds must activate at round 0")
	}
	if out.Count < 2 {
		t.Fatalf("count = %d", out.Count)
	}
}

func TestLTFullSeedingActivatesNeighbors(t *testing.T) {
	// If every neighbor of v is a seed, v's influence reaches 1.0, which
	// meets any threshold θ_v in [0,1).
	g := gen.Star(5) // center 0, leaves 1..4
	lt := NewLT(g)
	out := lt.Simulate([]int32{1, 2, 3, 4}, rand.New(rand.NewSource(2)))
	if !out.Activated(0) {
		t.Fatal("fully surrounded center must activate")
	}
	if out.Round[0] != 1 {
		t.Fatalf("center activated at round %d, want 1", out.Round[0])
	}
}

func TestLTStaysInComponent(t *testing.T) {
	g := gen.DisjointUnion(gen.Clique(5), gen.Clique(5))
	lt := NewLT(g)
	out := lt.Simulate([]int32{0, 1, 2, 3, 4}, rand.New(rand.NewSource(3)))
	for v := int32(5); v < 10; v++ {
		if out.Activated(v) {
			t.Fatal("LT diffusion crossed components")
		}
	}
}

func TestLTMonteCarloDeterministic(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 400, Attach: 3, Cliques: 80, MinSize: 3, MaxSize: 7, Seed: 4,
	})
	lt := NewLT(g)
	a := lt.MonteCarlo([]int32{0, 1}, 150, 9)
	b := lt.MonteCarlo([]int32{0, 1}, 150, 9)
	for v := range a.Activation {
		if a.Activation[v] != b.Activation[v] {
			t.Fatal("LT MonteCarlo not deterministic for fixed seed")
		}
	}
	if a.MeanSpread < 2 {
		t.Fatalf("mean spread = %f", a.MeanSpread)
	}
	// Seeds have probability 1.
	if a.Activation[0] != 1 || a.Activation[1] != 1 {
		t.Fatal("seed activation must be 1")
	}
}

func TestLTMoreSeedsMoreSpread(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 600, Attach: 3, Cliques: 120, MinSize: 3, MaxSize: 8, Seed: 6,
	})
	lt := NewLT(g)
	few := lt.MonteCarlo([]int32{0, 1, 2}, 200, 5).MeanSpread
	many := lt.MonteCarlo([]int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 200, 5).MeanSpread
	if many <= few {
		t.Fatalf("spread not increasing in seeds: %f vs %f", few, many)
	}
}
