package baseline

import (
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

func TestCompDivFig1(t *testing.T) {
	// Paper §1: in the ego-network of v, the component-based model sees H1
	// (8 vertices) as ONE context no matter the k — it cannot decompose it.
	g := gen.Fig1Graph()
	m := NewCompDiv(g)
	// k=4: components {x1..x4, y1..y4} and {r1..r6}: 2 contexts, not 3.
	if got := m.Score(gen.Fig1V, 4); got != 2 {
		t.Fatalf("Comp-Div score(v)@4 = %d, want 2", got)
	}
	// k up to 6: both components still qualify by size.
	for k := int32(1); k <= 6; k++ {
		if got := m.Score(gen.Fig1V, k); got != 2 {
			t.Fatalf("Comp-Div score(v)@%d = %d, want 2", k, got)
		}
	}
	// k=7: only H1 (8 vertices) qualifies.
	if got := m.Score(gen.Fig1V, 7); got != 1 {
		t.Fatalf("Comp-Div score(v)@7 = %d, want 1", got)
	}
	ctx := m.Contexts(gen.Fig1V, 4)
	if len(ctx) != 2 || len(ctx[0]) != 8 || len(ctx[1]) != 6 {
		t.Fatalf("Comp-Div contexts = %v", ctx)
	}
}

func TestCoreDivFig1(t *testing.T) {
	// Paper §1: for 1<=k<=3 H1 is one maximal connected k-core; for k>=4
	// H1 disappears while the octahedron survives (it is a 4-core).
	g := gen.Fig1Graph()
	m := NewCoreDiv(g)
	if got := m.Score(gen.Fig1V, 3); got != 2 {
		t.Fatalf("Core-Div score(v)@3 = %d, want 2 (H1 + octahedron)", got)
	}
	if got := m.Score(gen.Fig1V, 4); got != 1 {
		t.Fatalf("Core-Div score(v)@4 = %d, want 1 (octahedron only)", got)
	}
	ctx := m.Contexts(gen.Fig1V, 4)
	if len(ctx) != 1 || len(ctx[0]) != 6 {
		t.Fatalf("Core-Div contexts@4 = %v, want the 6 r-vertices", ctx)
	}
	if got := m.Score(gen.Fig1V, 5); got != 0 {
		t.Fatalf("Core-Div score(v)@5 = %d, want 0", got)
	}
}

func TestModelsOnFlower(t *testing.T) {
	// Hub attached to 3 disjoint K4s: all three models agree the hub has
	// diversity 3 at k=4 (components of size 4, 3-cores... k-core param 3).
	b := graph.NewBuilder(1)
	next := int32(1)
	for c := 0; c < 3; c++ {
		members := make([]int32, 4)
		for i := range members {
			members[i] = next
			next++
			b.AddEdge(0, members[i])
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(members[i], members[j])
			}
		}
	}
	g := b.Build()
	if got := NewCompDiv(g).Score(0, 4); got != 3 {
		t.Fatalf("Comp-Div = %d, want 3", got)
	}
	if got := NewCoreDiv(g).Score(0, 3); got != 3 {
		t.Fatalf("Core-Div = %d, want 3", got)
	}
}

func TestTopRGeneric(t *testing.T) {
	g := gen.Fig1Graph()
	top, err := TopR(NewCompDiv(g), g.N(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("answer size = %d, want 3", len(top))
	}
	if top[0].V != gen.Fig1V || top[0].Score != 2 {
		t.Fatalf("top-1 = %+v, want v with Comp-Div score 2", top[0])
	}
	// Scores are non-increasing.
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("ranking not sorted")
		}
	}
	if _, err := TopR(NewCompDiv(g), g.N(), 0, 1); err == nil {
		t.Fatal("k=0 should be rejected")
	}
	if _, err := TopR(NewCompDiv(g), g.N(), 2, 0); err == nil {
		t.Fatal("r=0 should be rejected")
	}
}

func TestRandomSelector(t *testing.T) {
	sel := Random(100, 10, 42)
	if len(sel) != 10 {
		t.Fatalf("selected %d, want 10", len(sel))
	}
	seen := map[int32]bool{}
	for _, e := range sel {
		if seen[e.V] {
			t.Fatal("duplicate vertex selected")
		}
		seen[e.V] = true
	}
	// Deterministic for a fixed seed.
	again := Random(100, 10, 42)
	for i := range sel {
		if sel[i] != again[i] {
			t.Fatal("Random not deterministic for fixed seed")
		}
	}
	if got := Random(5, 10, 1); len(got) != 5 {
		t.Fatalf("clamp: got %d, want 5", len(got))
	}
}

// Property: Comp-Div score with k=1 equals the number of ego components;
// non-increasing in k.
func TestCompDivMonotoneInK(t *testing.T) {
	rng := testutil.Rand(t, 9)
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(20)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		m := NewCompDiv(g)
		for v := int32(0); int(v) < g.N(); v++ {
			prev := -1
			for k := int32(1); k <= 6; k++ {
				s := m.Score(v, k)
				if prev >= 0 && s > prev {
					t.Fatalf("Comp-Div not monotone: v=%d k=%d %d > %d", v, k, s, prev)
				}
				prev = s
			}
		}
	}
}
