// Package baseline implements the two structural diversity models the
// paper compares against (§7): the component-based model of Huang et
// al./Chang et al. [7, 21] and the core-based model of Huang et al. [20],
// plus random selection. Each model defines a per-vertex diversity score
// over the ego-network and supports the same top-r search interface as the
// truss-based searchers.
package baseline

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/kcore"
)

// VertexScore pairs a vertex with a diversity score (mirrors core.VertexScore
// without importing it, keeping the baselines free-standing).
type VertexScore struct {
	V     int32
	Score int
}

// Model is a per-vertex structural diversity definition over ego-networks.
type Model interface {
	// Name identifies the model in reports ("Comp-Div", "Core-Div").
	Name() string
	// Score returns the structural diversity of v w.r.t. parameter k.
	Score(v int32, k int32) int
	// Contexts returns the social contexts of v as global vertex sets.
	Contexts(v int32, k int32) [][]int32
}

// CompDiv is the component-based model: each connected component of the
// ego-network with at least k vertices is one social context [7, 21].
type CompDiv struct {
	g *graph.Graph
}

// NewCompDiv returns the component-based model over g.
func NewCompDiv(g *graph.Graph) *CompDiv { return &CompDiv{g: g} }

// Name implements Model.
func (c *CompDiv) Name() string { return "Comp-Div" }

// Score counts ego-network components of size >= k.
func (c *CompDiv) Score(v int32, k int32) int {
	return len(c.Contexts(v, k))
}

// Contexts returns the size->=k components of the ego-network.
func (c *CompDiv) Contexts(v int32, k int32) [][]int32 {
	net := ego.ExtractOne(c.g, v)
	if len(net.Verts) == 0 {
		return nil
	}
	labels, count := net.G.ConnectedComponents()
	groups := make([][]int32, count)
	for lv, lbl := range labels {
		groups[lbl] = append(groups[lbl], net.Verts[lv])
	}
	out := groups[:0]
	for _, grp := range groups {
		if int32(len(grp)) >= k {
			out = append(out, grp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// CoreDiv is the core-based model: each maximal connected k-core of the
// ego-network is one social context [20].
type CoreDiv struct {
	g *graph.Graph
}

// NewCoreDiv returns the core-based model over g.
func NewCoreDiv(g *graph.Graph) *CoreDiv { return &CoreDiv{g: g} }

// Name implements Model.
func (c *CoreDiv) Name() string { return "Core-Div" }

// Score counts the maximal connected k-cores of the ego-network.
func (c *CoreDiv) Score(v int32, k int32) int {
	net := ego.ExtractOne(c.g, v)
	if net.G.M() == 0 {
		return 0
	}
	core := kcore.Decompose(net.G)
	return kcore.CountComponents(net.G, core, k)
}

// Contexts returns the maximal connected k-cores as global vertex sets.
func (c *CoreDiv) Contexts(v int32, k int32) [][]int32 {
	net := ego.ExtractOne(c.g, v)
	if net.G.M() == 0 {
		return nil
	}
	core := kcore.Decompose(net.G)
	return net.GlobalSets(kcore.Components(net.G, core, k))
}

// TopR runs the generic online top-r search for any Model.
func TopR(m Model, n int, k int32, r int) ([]VertexScore, error) {
	return Search(context.Background(), m, n, k, r)
}

// Search is TopR with cancellation: every candidate costs one ego-network
// decomposition, so the context is polled before each score.
func Search(ctx context.Context, m Model, n int, k int32, r int) ([]VertexScore, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d, must be >= 1", k)
	}
	if r < 1 {
		return nil, fmt.Errorf("baseline: r = %d, must be >= 1", r)
	}
	if r > n {
		r = n
	}
	all := make([]VertexScore, n)
	for v := 0; v < n; v++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		all[v] = VertexScore{V: int32(v), Score: m.Score(int32(v), k)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].V < all[j].V
	})
	return all[:r], nil
}

// Random returns r distinct vertices chosen uniformly at random — the
// Random selector of the effectiveness experiments (Exp-8).
func Random(n, r int, seed int64) []VertexScore {
	if r > n {
		r = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]VertexScore, r)
	for i := 0; i < r; i++ {
		out[i] = VertexScore{V: int32(perm[i])}
	}
	return out
}
