package trussdiv

import (
	"context"
	"errors"
	"fmt"

	"trussdiv/internal/core"
	"trussdiv/internal/store"
)

// Epoch numbers the graph versions a DB has served: Open produces epoch 1
// (or resumes the epoch a warm index store recorded), and every successful
// Apply produces the next one. A Result's Epoch field names the snapshot
// that answered it.
type Epoch uint64

// Updates is one atomic batch of edge edits for DB.Apply. Edges may be
// given in either orientation; the batch must be internally consistent:
// no duplicate edits, no edge appearing in both lists, every insertion
// absent from the current graph and every deletion present in it. The
// vertex set is fixed at Open — edits naming vertices outside [0, N) are
// rejected (grow the vertex set by rebuilding the graph).
type Updates struct {
	Insert []Edge
	Delete []Edge
}

// UpdateError reports a rejected update batch: the offending edge and the
// reason. Apply rejects the whole batch atomically — the DB keeps serving
// its current snapshot and the epoch does not advance.
type UpdateError struct {
	Edge   Edge
	Reason string
}

func (e *UpdateError) Error() string {
	return fmt.Sprintf("trussdiv: cannot apply edit (%d,%d): %s", e.Edge.U, e.Edge.V, e.Reason)
}

// ErrBadUpdate is the sentinel matched by errors.Is when an update batch
// is rejected; the concrete error is *UpdateError.
var ErrBadUpdate = errors.New("trussdiv: invalid update batch")

// Is makes errors.Is(err, ErrBadUpdate) match.
func (e *UpdateError) Is(target error) bool { return target == ErrBadUpdate }

// Rebinder is an optional interface for engines plugged in through
// DB.Register: when the DB applies an update batch, a custom engine
// implementing Rebinder is asked for a replacement bound to the edited
// graph, which serves in the next snapshot. Custom engines without it are
// carried into the next snapshot unchanged — correct only for engines
// that read the graph through the DB rather than holding their own copy.
type Rebinder interface {
	Rebind(g *Graph) (Engine, error)
}

// Snapshot is one immutable version of the DB: a graph, the index cache
// built over it, and the engine registry bound to both, all stamped with
// an epoch. Queries against a Snapshot are guaranteed consistent — a
// concurrent Apply builds the next snapshot on the side and never touches
// this one, so a reader that grabbed a Snapshot keeps its epoch (and its
// answers) for as long as it holds the reference. DB query methods grab
// the current snapshot once per call; hold one explicitly (db.Snapshot())
// to pin a multi-query read to a single graph version.
type Snapshot struct {
	epoch  Epoch
	g      *Graph
	w      workload
	cache  *indexCache
	reg    *registry
	forced string
	// applied records the incremental-repair work of the update batch that
	// produced this snapshot (nil for the Open snapshot and for snapshots
	// whose caches held nothing repairable).
	applied *core.UpdateStats
	// results is the DB's serving-side result cache (nil when disabled).
	// Keys carry the epoch, so a pinned old snapshot and the live one
	// share the structure without ever sharing entries.
	results *resultCache
}

// newSnapshot binds the built-in engines to one graph + cache pair. The
// cache's epoch is aligned so persisted state names this snapshot.
func newSnapshot(epoch Epoch, g *Graph, cache *indexCache, forced string) (*Snapshot, error) {
	s := &Snapshot{
		epoch:  epoch,
		g:      g,
		w:      measure(g),
		cache:  cache,
		reg:    newRegistry(),
		forced: forced,
	}
	cache.setEpoch(epoch)
	for _, reg := range []struct {
		engine   Engine
		routable bool
	}{
		{newOnlineEngine(g, s.w), true},
		{newBoundEngine(g, s.w, cache), true},
		{&tsdEngine{cache: cache, w: s.w}, true},
		{&gctEngine{cache: cache, w: s.w}, true},
		{&hybridEngine{cache: cache, w: s.w}, true},
		// The native measure engines are routable for their own measure
		// only (they declare it via MeasureLister), so truss queries never
		// see them — same reachability as when they were non-routable.
		{&baselineEngine{name: "comp", measure: MeasureComponent,
			model: NewCompDiv(g), g: g, w: s.w, cache: cache}, true},
		{&baselineEngine{name: "kcore", measure: MeasureCore,
			model: NewCoreDiv(g), g: g, w: s.w, cache: cache}, true},
		// The parameter-free engine serves every measure but only the
		// k-less queries (K == 0), which in turn route only to it — the
		// K axis partitions the routing matrix, so the fixed-k engines'
		// reachability is unchanged.
		{&pfreeEngine{g: g, w: s.w, cache: cache}, true},
	} {
		if err := s.reg.add(reg.engine, reg.routable); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Epoch returns the snapshot's version number.
func (s *Snapshot) Epoch() Epoch { return s.epoch }

// Graph returns the graph this snapshot serves.
func (s *Snapshot) Graph() *Graph { return s.g }

// ApplyStats reports the incremental-repair work of the Apply that
// produced this snapshot: how many edges changed and how many ego-network
// structures were rebuilt rather than rebuilt-from-scratch. Nil for the
// Open snapshot, and for applies that found no repairable index in memory.
func (s *Snapshot) ApplyStats() *UpdateStats {
	if s.applied == nil {
		return nil
	}
	cp := *s.applied
	return &cp
}

// Engines lists the snapshot's registered engine names in registration
// order.
func (s *Snapshot) Engines() []string { return s.reg.names() }

// Engine returns the named engine bound to this snapshot; the error is a
// *UnknownEngineError (matching errors.Is(err, ErrUnknownEngine)) for
// unregistered names.
func (s *Snapshot) Engine(name string) (Engine, error) { return s.reg.lookup(name) }

// Route returns the routable engine with the lowest cost estimate for q
// among those serving q.Measure, counting any index the engine would
// still have to build. Ties keep the earliest registered engine. Routing
// is snapshot-aware: an index that survived the last Apply repaired or
// patched (TSD, GCT, the truss decomposition, the rankings) keeps its
// zero build cost, while one whose repair declined (region over budget)
// prices its lazy rebuild back in. Routing is also K-aware: q.K == 0
// selects among the parameter-free engines only, any other K among the
// fixed-k engines only. Route returns nil when no routable engine
// serves the measure (or the measure name is unknown); the query paths
// report that as an error.
func (s *Snapshot) Route(q Query) Engine {
	if !q.Measure.Valid() {
		return nil
	}
	var best Engine
	bestCost := 0.0
	for _, e := range s.reg.routableFor(q.Measure) {
		if isParameterFree(e) != (q.K == 0) {
			continue
		}
		if c := e.Cost(q).Total(); best == nil || c < bestCost {
			best, bestCost = e, c
		}
	}
	return best
}

// routeAmortized is the single routing policy: per-query pin, then the
// DB-level pin (both checked against the query's measure and the
// engine-aware K contract), then the cheapest routable engine serving
// the measure with the index build cost divided across batchSize
// queries (1 = the TopR single-query case, where the division is a
// no-op). Queries without a K (q.K == 0) route among the
// parameter-free engines only; fixed-k queries never see those.
func (s *Snapshot) routeAmortized(q Query, batchSize int) (Engine, error) {
	if q.Engine != "" {
		return s.lookupValidated(q.Engine, q)
	}
	if s.forced != "" {
		return s.lookupValidated(s.forced, q)
	}
	if !q.Measure.Valid() {
		_, err := ParseMeasure(string(q.Measure))
		return nil, err
	}
	if q.K != 0 && q.K < 2 {
		return nil, &BadQueryError{K: q.K,
			Reason: "k must be >= 2, or 0 for parameter-free search"}
	}
	wantPF := q.K == 0
	var best Engine
	bestCost := 0.0
	for _, e := range s.reg.routableFor(q.Measure) {
		if isParameterFree(e) != wantPF {
			continue
		}
		est := e.Cost(q)
		c := est.Build/float64(batchSize) + est.Query
		if best == nil || c < bestCost {
			best, bestCost = e, c
		}
	}
	if best == nil {
		if wantPF {
			return nil, &BadQueryError{K: 0, Reason: fmt.Sprintf(
				"no parameter-free engine is routable for measure %q; set k >= 2",
				q.Measure.Normalize())}
		}
		return nil, fmt.Errorf("trussdiv: no routable engine registered for measure %q",
			q.Measure.Normalize())
	}
	return best, nil
}

// lookupValidated resolves a pinned engine name and checks the query's
// K against the engine's contract.
func (s *Snapshot) lookupValidated(name string, q Query) (Engine, error) {
	eng, err := s.reg.lookupFor(name, q.Measure)
	if err != nil {
		return nil, err
	}
	if err := validateQueryK(eng, q); err != nil {
		return nil, err
	}
	return eng, nil
}

// ResolveEngine resolves the engine that would answer q exactly as TopR
// does: the per-query Engine pin (checked against q.Measure), else the
// DB-level WithEngine default, else the cheapest routable engine serving
// q.Measure. The error is an *UnknownEngineError for unregistered pins
// and an *UnsupportedMeasureError for pins outside the measure's row of
// the routing matrix.
func (s *Snapshot) ResolveEngine(q Query) (Engine, error) {
	return s.routeAmortized(q, 1)
}

// resolveBatch resolves every query's engine with the index build cost
// amortized over the batch size.
func (s *Snapshot) resolveBatch(qs []Query) ([]Engine, error) {
	engines := make([]Engine, len(qs))
	for i, q := range qs {
		eng, err := s.routeAmortized(q, len(qs))
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	return engines, nil
}

// TopR answers a top-r query through the cheapest (or pinned) engine of
// this snapshot, consulting the serving-side result cache first: a
// repeat of a query this snapshot already answered returns the cached
// Result (byte-identical — it IS the earlier answer) without entering
// the engine. The Result is stamped with the snapshot's epoch; the
// Stats, when requested, name the engine that answered.
func (s *Snapshot) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	eng, err := s.routeAmortized(q, 1)
	if err != nil {
		return nil, nil, err
	}
	return s.cachedTopR(ctx, eng, q)
}

// cachedTopR runs q through an already-resolved engine with the result
// cache consulted first — the single execution point shared by TopR,
// Batch, and (via TopR) the server and cluster tiers, so every serving
// path sees the same cache.
func (s *Snapshot) cachedTopR(ctx context.Context, eng Engine, q Query) (*Result, *Stats, error) {
	var key resultKey
	if s.results != nil {
		key = resultCacheKey(s.epoch, eng.Name(), q)
		if res, stats, ok := s.results.get(key, q.Candidates); ok {
			return res, stats, nil
		}
	}
	res, stats, err := eng.TopR(ctx, q)
	if res != nil {
		res.Epoch = uint64(s.epoch)
	}
	if stats != nil {
		stats.Engine = eng.Name()
	}
	if err == nil && s.results != nil {
		s.results.put(key, q.Candidates, res, stats)
	}
	return res, stats, err
}

// TopRRange answers q restricted to the contiguous vertex range [lo, hi)
// — the partition primitive of the cluster tier, where each shard worker
// owns one id range of the shared graph. The answer is exactly what TopR
// would return for q with Candidates set to lo..hi-1: canonical order
// (score desc, id asc) with zero-score padding from the smallest unused
// ids in range, so per-shard answers merge byte-identically into the
// whole-graph answer. q must not carry its own Candidates.
func (s *Snapshot) TopRRange(ctx context.Context, q Query, lo, hi int32) (*Result, *Stats, error) {
	if q.Candidates != nil {
		return nil, nil, errors.New("trussdiv: TopRRange: query already carries Candidates")
	}
	if lo < 0 || int(hi) > s.g.N() || lo > hi {
		return nil, nil, fmt.Errorf("trussdiv: TopRRange: range [%d,%d) outside [0,%d)", lo, hi, s.g.N())
	}
	cands := make([]int32, 0, hi-lo)
	for v := lo; v < hi; v++ {
		cands = append(cands, v)
	}
	q.Candidates = cands
	return s.TopR(ctx, q)
}

// TopRRange answers q restricted to the vertex range [lo, hi) on the
// current snapshot; see Snapshot.TopRRange.
func (db *DB) TopRRange(ctx context.Context, q Query, lo, hi int32) (*Result, *Stats, error) {
	return db.Snapshot().TopRRange(ctx, q, lo, hi)
}

// Score returns score(v) at threshold k, reading the GCT index when one
// is built (O(log) per query) and computing online otherwise.
func (s *Snapshot) Score(ctx context.Context, v, k int32) (int, error) {
	return s.pointEngine().Score(ctx, v, k)
}

// Contexts returns the social contexts SC(v) at threshold k, using the
// same index-if-available strategy as Score.
func (s *Snapshot) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	return s.pointEngine().Contexts(ctx, v, k)
}

// pointEngine picks the engine for single-vertex queries: the pinned one,
// else gct once its index exists, else the online scorer.
func (s *Snapshot) pointEngine() Engine {
	name := s.forced
	if name == "" {
		if s.cache.hasGCT() {
			name = "gct"
		} else {
			name = "online"
		}
	}
	e, err := s.reg.lookup(name)
	if err != nil { // unreachable: built-ins are always registered
		panic(err)
	}
	return e
}

// Prepare eagerly readies the named engines of this snapshot; see
// DB.Prepare.
func (s *Snapshot) Prepare(ctx context.Context, names ...string) error {
	if len(names) == 0 {
		names = prepareAll
	}
	// One store rewrite at the end instead of one per built accelerator.
	s.cache.beginDeferredPersist()
	defer s.cache.endDeferredPersist()
	if err := ctx.Err(); err != nil {
		return err
	}
	// When several of the requested structures are missing, build them in
	// one shared per-vertex extraction pass instead of one pass each; the
	// loop below then finds them in memory. See indexCache.prepareShared.
	s.cache.prepareShared(names)
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch name {
		case "bound":
			// The bound engine's per-query sparsification reads the cached
			// global truss decomposition.
			s.cache.trussTau()
		case "tsd":
			s.cache.tsdIndex()
		case "gct":
			s.cache.gctIndex()
		case "hybrid":
			s.cache.hybridEngine()
		case "comp":
			// The native measure engines precompute their per-k rankings
			// (the hybrid strategy generalized), so prepared measures answer
			// top-r in O(r).
			s.cache.measureRankings(MeasureComponent, true)
		case "kcore":
			s.cache.measureRankings(MeasureCore, true)
		case "pfree":
			// The parameter-free engine is prepared for every measure it
			// serves: each pfree ranking derives in O(table) from the per-k
			// rankings (built here if missing), so a prepared pfree answers
			// any measure's k-less top-r in O(r).
			for _, m := range AllMeasures() {
				s.cache.pfreeRanking(m, true)
			}
		case "online":
			// stateless engine: nothing to prepare
		default:
			if _, err := s.reg.lookup(name); err != nil {
				return err
			}
			return fmt.Errorf("trussdiv: Prepare: engine %q manages its own state", name)
		}
	}
	return nil
}

// Snapshot returns the DB's current snapshot. The reference stays valid —
// and keeps answering with its own graph version — across any number of
// subsequent Apply calls.
func (db *DB) Snapshot() *Snapshot { return db.snap.Load() }

// Epoch returns the epoch of the DB's current snapshot.
func (db *DB) Epoch() Epoch { return db.Snapshot().epoch }

// Apply atomically applies one batch of edge insertions and deletions and
// installs the resulting graph as the DB's next snapshot, returning its
// epoch. The transition is copy-on-write: in-flight readers keep the
// snapshot (and epoch) they started with, never block on the apply, and
// never observe a half-applied batch — the new snapshot becomes visible in
// one pointer swap after it is fully built.
//
// Indexes are maintained incrementally instead of rebuilt: an in-memory
// TSD or GCT index is repaired by rebuilding only the ego-network
// structures the batch touched (the paper's §5.3 locality argument); the
// global truss decomposition is repaired inside the locality bound of the
// edit batch (each edit moves trussness by at most one, so the change is
// confined to a bottleneck-connected region around the edits — see
// DESIGN.md), falling back to a parallel rebuild when the region exceeds
// its budget; and the hybrid and per-measure rankings are patched by
// re-scoring only the vertices in the edits' triangle neighborhoods.
// ApplyStats on the new snapshot reports which path each structure took,
// and cost routing prices whichever survivors exist.
//
// A batch that fails validation (errors.Is(err, ErrBadUpdate)) is rejected
// whole: the epoch does not advance and the DB keeps serving its current
// snapshot. An empty batch is a no-op returning the current epoch. Apply
// calls serialize with each other; ctx is observed between repair phases
// (an individual repair is not interruptible).
//
// The persistent index store, when configured, is not rewritten by Apply —
// call SaveIndexes to persist the post-update state (the file is
// fingerprinted against the new graph and records the new epoch).
func (db *DB) Apply(ctx context.Context, u Updates) (Epoch, error) {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	cur := db.snap.Load()
	ins, del, err := u.normalize(cur.g)
	if err != nil {
		return 0, err
	}
	if len(ins) == 0 && len(del) == 0 {
		return cur.epoch, nil
	}
	newG, err := core.ApplyEdits(cur.g, ins, del)
	if err != nil {
		// unreachable after normalize, but a second line of defense
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	nextCache, stats := cur.cache.advance(newG, ins, del)
	next, err := newSnapshot(cur.epoch+1, newG, nextCache, db.forced)
	if err != nil {
		return 0, err // unreachable: built-ins always register cleanly
	}
	next.applied = stats
	next.results = db.results
	// Rebind custom engines into a scratch list first: a failure anywhere
	// must leave db.custom untouched, or an engine could end up bound to a
	// graph the DB never adopted.
	rebound := make([]customEngine, len(db.custom))
	copy(rebound, db.custom)
	for i := range rebound {
		e := rebound[i].engine
		if rb, ok := e.(Rebinder); ok {
			re, err := rb.Rebind(newG)
			if err != nil {
				return 0, fmt.Errorf("trussdiv: Apply: rebind engine %q: %w", e.Name(), err)
			}
			e = re
			rebound[i].engine = re
		}
		if err := next.reg.add(e, rebound[i].routable); err != nil {
			return 0, err
		}
	}
	db.custom = rebound
	db.snap.Store(next)
	if db.results != nil {
		// The epoch in every key already guarantees no stale hit; the
		// purge just frees the retired graph's entries from the LRU.
		db.results.invalidateBelow(next.epoch)
	}
	db.broadcastEpoch()
	return next.epoch, nil
}

// normalize canonicalizes and validates one update batch against g:
// orientations are normalized to U < V, and the batch must contain no
// duplicates, no insert∩delete overlap, only in-range endpoints, only
// absent edges in Insert and present edges in Delete.
func (u Updates) normalize(g *Graph) (ins, del []Edge, err error) {
	n := int32(g.N())
	seen := make(map[Edge]string, len(u.Insert)+len(u.Delete))
	canon := func(e Edge, kind string) (Edge, error) {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		if e.U == e.V {
			return e, &UpdateError{Edge: e, Reason: "self-loop"}
		}
		if e.U < 0 || e.V >= n {
			return e, &UpdateError{Edge: e,
				Reason: fmt.Sprintf("endpoint out of range [0,%d) (the vertex set is fixed at Open; rebuild to grow it)", n)}
		}
		if prev, dup := seen[e]; dup {
			reason := "duplicate edit in batch"
			if prev != kind {
				reason = "edge appears in both Insert and Delete"
			}
			return e, &UpdateError{Edge: e, Reason: reason}
		}
		seen[e] = kind
		return e, nil
	}
	for _, e := range u.Insert {
		e, err := canon(e, "insert")
		if err != nil {
			return nil, nil, err
		}
		if g.HasEdge(e.U, e.V) {
			return nil, nil, &UpdateError{Edge: e, Reason: "insert of an edge already present"}
		}
		ins = append(ins, e)
	}
	for _, e := range u.Delete {
		e, err := canon(e, "delete")
		if err != nil {
			return nil, nil, err
		}
		if !g.HasEdge(e.U, e.V) {
			return nil, nil, &UpdateError{Edge: e, Reason: "delete of an edge not present"}
		}
		del = append(del, e)
	}
	return ins, del, nil
}

// IndexStats reports which indexes of this snapshot are ready, their
// sizes, and the time spent building and loading them.
func (s *Snapshot) IndexStats() IndexStats {
	c := s.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	st := IndexStats{
		TSDReady:    c.tsd != nil,
		GCTReady:    c.gct != nil,
		HybridReady: c.hybrid != nil,
		TauReady:    c.tau != nil,
		BuildTime:   c.buildTime,
		LoadTime:    c.loadTime,
	}
	for _, m := range AllMeasures() {
		if c.mrank[m] != nil {
			st.MeasureRankings = append(st.MeasureRankings, m)
		}
	}
	for _, m := range AllMeasures() {
		if c.pfrank[m] != nil {
			st.PFreeRankings = append(st.PFreeRankings, m)
		}
	}
	if c.tsd != nil {
		st.TSDBytes = c.tsd.SizeBytes()
	}
	if c.gct != nil {
		st.GCTBytes = c.gct.SizeBytes()
	}
	return st
}

// StoreStatus reports the state of this snapshot's connection to the
// persistent index store.
func (s *Snapshot) StoreStatus() StoreStatus {
	c := s.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StoreStatus{
		Dir:     c.dir,
		LoadErr: c.loadErr,
		SaveErr: c.saveErr,
	}
	if c.dir != "" {
		st.Path = store.PathIn(c.dir)
	}
	st.Mode = StoreDecode
	if c.file != nil {
		st.Warm = true
		st.FormatVersion = c.file.Version()
		if c.file.Mode() == store.ModeMmap {
			st.Mode = StoreMmap
		}
		for _, sec := range c.file.Sections() {
			st.Sections = append(st.Sections, sec.String())
		}
	}
	return st
}
