// Contagion: structural diversity as a predictor of social contagion.
//
// Generates a community-rich social network, selects the top-50 users
// under four diversity models (Random, Comp-Div, Core-Div, Truss-Div) —
// the non-random three as engines of one trussdiv.DB — seeds an
// Independent Cascade with 50 influential users, and measures how many of
// each model's selections get activated — the paper's effectiveness
// experiment (§7.2, Fig. 14) as a runnable program.
//
// Run with: go run ./examples/contagion
package main

import (
	"context"
	"fmt"
	"log"

	"trussdiv"
	"trussdiv/internal/baseline"
	"trussdiv/internal/cascade"
	"trussdiv/internal/gen"
)

func main() {
	const (
		k    = 4
		r    = 50
		p    = 0.05
		runs = 1000
		seed = 7
	)
	ctx := context.Background()
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 8000, Attach: 4, Cliques: 1500, MinSize: 4, MaxSize: 12, Diffuse: 150, Seed: seed,
	})
	fmt.Printf("social network: %d users, %d ties, %d triangles\n\n",
		g.N(), g.M(), g.CountTriangles())

	// Influential seeds via reverse influence sampling (IMM's core idea).
	seeds := cascade.MaxInfluenceRIS(g, p, 50, 800, seed)

	mc := cascade.NewIC(g, p).MonteCarlo(seeds, runs, seed)
	fmt.Printf("cascade: %d seeds, mean spread %.1f users per cascade\n\n",
		len(seeds), mc.MeanSpread)

	// Top-r selections of each diversity model. Seeds are excluded from
	// every selection: a seed activates by definition, so keeping one in a
	// target set would measure seed overlap, not contagion susceptibility.
	isSeed := make(map[int32]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}
	take := func(vs []int32) []int32 {
		out := make([]int32, 0, r)
		for _, v := range vs {
			if !isSeed[v] && len(out) < r {
				out = append(out, v)
			}
		}
		return out
	}
	over := r + len(seeds)

	db, err := trussdiv.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	q := trussdiv.NewQuery(k, over, trussdiv.WithoutStats())
	selections := map[string][]int32{}
	for display, engine := range map[string]string{
		"Truss-Div": "", // cost-routed to the cheapest exact engine
		"Comp-Div":  "comp",
		"Core-Div":  "kcore",
	} {
		var res *trussdiv.Result
		if engine == "" {
			res, _, err = db.TopR(ctx, q)
		} else {
			var e trussdiv.Engine
			e, err = db.Engine(engine)
			if err == nil {
				res, _, err = e.TopR(ctx, q)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		vs := make([]int32, len(res.TopR))
		for i, entry := range res.TopR {
			vs[i] = entry.V
		}
		selections[display] = take(vs)
	}
	rnd := baseline.Random(g.N(), over, seed)
	random := make([]int32, len(rnd))
	for i, e := range rnd {
		random[i] = e.V
	}
	selections["Random"] = take(random)

	fmt.Printf("expected activated among each model's top-%d:\n", r)
	for _, name := range []string{"Truss-Div", "Core-Div", "Comp-Div", "Random"} {
		fmt.Printf("  %-10s %.2f users\n", name, mc.ExpectedActivated(selections[name]))
	}
	fmt.Println("\nhigher truss-based diversity => higher exposure to multiple")
	fmt.Println("social contexts => more contagion (paper Fig. 13-14).")
}
