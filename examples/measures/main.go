// Measures: one graph, three diversity definitions, disagreeing top-r
// rankings — the paper's §7 model comparison (Truss-Div vs Comp-Div vs
// Core-Div) served through the public measure axis.
//
// Opens a synthetic collaboration-style network as a trussdiv.DB and
// runs the same top-r query under every measure via Query.WithMeasure:
// the DB routes each to the cheapest engine serving that measure (see
// db.Measures for the routing matrix). The example then prints where the
// rankings disagree — vertices one model celebrates and another ignores
// — and verifies each measure's routed answer against its native engine.
//
// Run with: go run ./examples/measures
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"

	"trussdiv"
)

func main() {
	ctx := context.Background()
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 800, Attach: 3, Cliques: 160, MinSize: 4, MaxSize: 9, Seed: 21,
	})
	db, err := trussdiv.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	// The routing matrix: which engines can answer which measure.
	fmt.Println("measure axis (db.Measures):")
	for _, info := range db.Measures() {
		def := ""
		if info.Default {
			def = "  (default)"
		}
		fmt.Printf("  %-10s served by %v%s\n", info.Measure, info.Engines, def)
	}
	fmt.Println()

	// One query, three measures. Preparing the native engines first makes
	// the non-truss measures O(r) reads (rankings built once); without it
	// the DB routes to the generic online/bound engines instead — same
	// answers either way.
	if err := db.Prepare(ctx, "hybrid", "comp", "kcore"); err != nil {
		log.Fatal(err)
	}
	const k, r = int32(4), 10
	top := map[trussdiv.Measure][]trussdiv.VertexScore{}
	for _, m := range trussdiv.AllMeasures() {
		q := trussdiv.NewQuery(k, r, trussdiv.WithMeasure(m))
		res, stats, err := db.TopR(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		top[m] = res.TopR
		fmt.Printf("top-%d under %-10s (engine %-7s):", r, m, stats.Engine)
		for _, e := range res.TopR {
			fmt.Printf(" %d:%d", e.V, e.Score)
		}
		fmt.Println()

		// The routed answer must equal the measure's native engine.
		native := map[trussdiv.Measure]string{
			trussdiv.MeasureTruss:     "online",
			trussdiv.MeasureComponent: "comp",
			trussdiv.MeasureCore:      "kcore",
		}[m]
		check, _, err := db.TopR(ctx, trussdiv.NewQuery(k, r,
			trussdiv.WithMeasure(m), trussdiv.ViaEngine(native)))
		if err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(check.TopR, res.TopR) {
			log.Fatalf("measure %s: routed answer diverged from engine %s", m, native)
		}
	}
	fmt.Println()

	// Where the models disagree: membership of the top-r sets.
	in := func(m trussdiv.Measure) map[int32]bool {
		set := make(map[int32]bool, r)
		for _, e := range top[m] {
			set[e.V] = true
		}
		return set
	}
	truss, comp, kcore := in(trussdiv.MeasureTruss), in(trussdiv.MeasureComponent), in(trussdiv.MeasureCore)
	overlap := func(a, b map[int32]bool) int {
		n := 0
		for v := range a {
			if b[v] {
				n++
			}
		}
		return n
	}
	fmt.Printf("top-%d overlap: truss∩component=%d, truss∩core=%d, component∩core=%d\n",
		r, overlap(truss, comp), overlap(truss, kcore), overlap(comp, kcore))
	for _, e := range top[trussdiv.MeasureTruss] {
		if !comp[e.V] && !kcore[e.V] {
			cs, _ := db.ScoreMeasure(ctx, e.V, k, trussdiv.MeasureComponent)
			ks, _ := db.ScoreMeasure(ctx, e.V, k, trussdiv.MeasureCore)
			fmt.Printf("vertex %d: truss score %d puts it in the truss top-%d, "+
				"but component sees %d and core sees %d\n", e.V, e.Score, r, cs, ks)
			break
		}
	}
}
