// Warmstart: the deployment loop the persistent index store was built
// for. "Deploy 1" opens a DB against an empty index directory — every
// index is built from the raw edge list and persisted to
// <dir>/indexes.tdx as a side effect. "Deploy 2" opens the same
// directory and serves the identical workload after only loading the
// file: no truss decomposition, no index build, typically an order of
// magnitude faster to first answer. The example then redeploys with a
// *changed* graph against the old store to show the fingerprint check
// refusing the stale file (errors.Is ErrStaleIndex) and rebuilding.
//
// Run with: go run ./examples/warmstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"trussdiv"
	"trussdiv/internal/gen"
)

func main() {
	ctx := context.Background()
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 10000, Attach: 4, Cliques: 1500, MinSize: 4, MaxSize: 12, Seed: 3,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	dir, err := os.MkdirTemp("", "trussdiv-warmstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Deploy 1: cold. Nothing on disk, so Prepare builds everything —
	// and, because the DB has an index directory, persists it.
	cold := openAndPrepare(ctx, g, dir, "deploy 1 (cold)")
	st := cold.StoreStatus()
	if st.SaveErr != nil {
		log.Fatal(st.SaveErr)
	}
	info, err := os.Stat(st.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  persisted %s: %d bytes, sections %v\n", st.Path, info.Size(), st.Sections)

	// Deploy 2: warm. Same graph, same directory — every index loads.
	warm := openAndPrepare(ctx, g, dir, "deploy 2 (warm)")
	if !warm.StoreStatus().Warm {
		log.Fatal("second deploy did not warm start")
	}

	// Same answers either way; the store only changes where the indexes
	// come from.
	q := trussdiv.NewQuery(4, 10, trussdiv.WithContexts())
	coldRes, _, err := cold.TopR(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	warmRes, stats, err := warm.TopR(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	if coldRes.TopR[0] != warmRes.TopR[0] {
		log.Fatal("cold and warm answers differ")
	}
	fmt.Printf("  k=%d r=%d via %s: top vertex %d (score %d), same as cold\n",
		q.K, q.R, stats.Engine, warmRes.TopR[0].V, warmRes.TopR[0].Score)

	// Deploy 3: the graph changed (one more community), the directory did
	// not. The fingerprint check refuses the stale file with a typed
	// error and the DB rebuilds — correctness never depends on ops
	// remembering to clear the index dir.
	g2 := gen.CommunityOverlay(gen.OverlayConfig{
		N: 10000, Attach: 4, Cliques: 1501, MinSize: 4, MaxSize: 12, Seed: 3,
	})
	changed, err := trussdiv.Open(g2, trussdiv.WithIndexDir(dir))
	if err != nil {
		log.Fatal(err)
	}
	st = changed.StoreStatus()
	fmt.Printf("deploy 3 (changed graph): stale index detected = %v\n  (%v)\n",
		errors.Is(st.LoadErr, trussdiv.ErrStaleIndex), st.LoadErr)
	if _, _, err := changed.TopR(ctx, q); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  fallback rebuild answered; store refreshed for the next deploy")
}

// openAndPrepare times the startup path a serving process pays: Open
// plus Prepare of every engine accelerator (bound/tsd/gct/hybrid).
func openAndPrepare(ctx context.Context, g *trussdiv.Graph, dir, label string) *trussdiv.DB {
	start := time.Now()
	db, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Prepare(ctx); err != nil {
		log.Fatal(err)
	}
	idx := db.IndexStats()
	fmt.Printf("%s: ready in %v (build %v, load %v)\n",
		label, time.Since(start).Round(time.Millisecond),
		idx.BuildTime.Round(time.Millisecond), idx.LoadTime.Round(time.Millisecond))
	return db
}
