// Dynamic: serving an evolving social network through the public
// mutable-graph API (the paper's §5.3 remark made a production write
// path). A stream of edge insertions and deletions is applied with
// db.Apply: each batch advances the DB to its next epoch-numbered
// snapshot with the TSD and GCT indexes repaired incrementally — only
// the ego-networks of the edited edges' endpoints and their common
// neighbors are rebuilt — while a reader that pinned the previous
// snapshot keeps its epoch and its answers. After each batch the updated
// DB is spot-checked against a freshly built DB on the same graph.
//
// Run with: go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"trussdiv"
)

func main() {
	const batches = 5
	ctx := context.Background()
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 6000, Attach: 4, Cliques: 900, MinSize: 4, MaxSize: 10, Seed: 21,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	db, err := trussdiv.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := db.Prepare(ctx, "tsd", "gct"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial index build: %v (epoch %d)\n\n",
		time.Since(start).Round(time.Millisecond), db.Epoch())

	// A long-lived reader pins the opening snapshot: updates applied below
	// never change what it sees.
	pinned := db.Snapshot()

	rng := rand.New(rand.NewSource(99))
	for batch := 1; batch <= batches; batch++ {
		u := randomBatch(db.Graph(), rng, 8, 8)

		start = time.Now()
		epoch, err := db.Apply(ctx, u)
		if err != nil {
			log.Fatal(err)
		}
		applyTime := time.Since(start)
		repaired := 0
		if st := db.Snapshot().ApplyStats(); st != nil {
			repaired = st.Affected
		}

		// The old way: rebuild everything on the mutated graph.
		var fresh *trussdiv.DB
		start = time.Now()
		fresh, err = trussdiv.Open(db.Graph())
		if err == nil {
			err = fresh.Prepare(ctx, "tsd", "gct")
		}
		if err != nil {
			log.Fatal(err)
		}
		rebuildTime := time.Since(start)

		// Spot-check: the repaired tsd engine must agree with the rebuilt
		// one on a sample of vertices and thresholds.
		for probe := 0; probe < 500; probe++ {
			v := int32(rng.Intn(db.Graph().N()))
			k := int32(3 + rng.Intn(4))
			q := trussdiv.NewQuery(k, 1,
				trussdiv.WithCandidates(v), trussdiv.ViaEngine("tsd"), trussdiv.WithoutStats())
			got, _, err := db.TopR(ctx, q)
			if err != nil {
				log.Fatal(err)
			}
			want, _, err := fresh.TopR(ctx, q)
			if err != nil {
				log.Fatal(err)
			}
			if got.TopR[0] != want.TopR[0] {
				log.Fatalf("batch %d: incremental index diverged at v=%d k=%d", batch, v, k)
			}
		}
		fmt.Printf("batch %d -> epoch %d: +%d/-%d edges, %4d ego-networks repaired  apply %8v  rebuild %8v  (%.0fx)\n",
			batch, epoch, len(u.Insert), len(u.Delete), repaired,
			applyTime.Round(time.Microsecond), rebuildTime.Round(time.Millisecond),
			float64(rebuildTime)/float64(applyTime))
	}

	fmt.Printf("\npinned reader still serves epoch %d (%d edges); the DB is at epoch %d (%d edges)\n",
		pinned.Epoch(), pinned.Graph().M(), db.Epoch(), db.Graph().M())
	fmt.Println("incremental repair matched a full rebuild after every batch.")
}

// randomBatch picks valid insertions (absent pairs) and deletions
// (present edges) for the next Apply. Inlined rather than imported: the
// example demonstrates the public API with no internal/ dependencies.
func randomBatch(g *trussdiv.Graph, rng *rand.Rand, nIns, nDel int) trussdiv.Updates {
	n := int32(g.N())
	var u trussdiv.Updates
	chosen := map[trussdiv.Edge]bool{}
	for len(u.Insert) < nIns {
		a, b := rng.Int31n(n), rng.Int31n(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := trussdiv.Edge{U: a, V: b}
		if g.HasEdge(a, b) || chosen[e] {
			continue
		}
		chosen[e] = true
		u.Insert = append(u.Insert, e)
	}
	edges := g.Edges()
	for len(u.Delete) < nDel && len(u.Delete) < len(edges) {
		e := edges[rng.Intn(len(edges))]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		u.Delete = append(u.Delete, e)
	}
	return u
}
