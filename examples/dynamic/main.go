// Dynamic: maintaining the TSD-index under edge updates (the paper's §5.3
// remark made concrete). A stream of edge insertions and deletions is
// applied to a social network; after each batch the index is repaired
// incrementally — only the ego-networks of the edited edges' endpoints and
// their common neighbors are rebuilt — and spot-checked against a full
// rebuild through the public engine API: each index seeds a trussdiv.DB
// whose "tsd" engine must agree vertex by vertex.
//
// Run with: go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"trussdiv"
	"trussdiv/internal/core"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
)

func main() {
	const batches = 5
	ctx := context.Background()
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 6000, Attach: 4, Cliques: 900, MinSize: 4, MaxSize: 10, Seed: 21,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	start := time.Now()
	idx := core.BuildTSDIndex(g)
	fmt.Printf("initial TSD-index build: %v\n\n", time.Since(start).Round(time.Millisecond))

	rng := rand.New(rand.NewSource(99))
	for batch := 1; batch <= batches; batch++ {
		cur := idx.Graph()
		ins, del := randomBatch(cur, rng, 8, 8)

		start = time.Now()
		updated, stats, err := idx.Update(ins, del)
		if err != nil {
			log.Fatal(err)
		}
		incTime := time.Since(start)

		start = time.Now()
		fresh := core.BuildTSDIndex(updated.Graph())
		fullTime := time.Since(start)

		// Spot-check equality on a sample of vertices and thresholds,
		// through the engine interface of two DBs seeded with the
		// incremental and the fresh index.
		incremental, err := openTSD(updated)
		if err != nil {
			log.Fatal(err)
		}
		rebuilt, err := openTSD(fresh)
		if err != nil {
			log.Fatal(err)
		}
		for probe := 0; probe < 500; probe++ {
			v := int32(rng.Intn(updated.Graph().N()))
			k := int32(3 + rng.Intn(4))
			got, err := incremental.Score(ctx, v, k)
			if err != nil {
				log.Fatal(err)
			}
			want, err := rebuilt.Score(ctx, v, k)
			if err != nil {
				log.Fatal(err)
			}
			if got != want {
				log.Fatalf("batch %d: incremental index diverged at v=%d k=%d", batch, v, k)
			}
		}
		fmt.Printf("batch %d: +%d/-%d edges, %4d ego-networks repaired  incremental %8v  full rebuild %8v  (%.0fx)\n",
			batch, stats.Inserted, stats.Removed, stats.Affected,
			incTime.Round(time.Microsecond), fullTime.Round(time.Millisecond),
			float64(fullTime)/float64(incTime))
		idx = updated
	}
	fmt.Println("\nincremental repair matched a full rebuild after every batch.")
}

// openTSD wraps a built TSD index in a DB and returns its tsd engine.
func openTSD(idx *core.TSDIndex) (trussdiv.Engine, error) {
	db, err := trussdiv.Open(idx.Graph(), trussdiv.WithTSDIndex(idx))
	if err != nil {
		return nil, err
	}
	return db.Engine("tsd")
}

// randomBatch picks valid insertions (absent pairs) and deletions
// (present edges).
func randomBatch(g *graph.Graph, rng *rand.Rand, nIns, nDel int) (ins, del []graph.Edge) {
	n := int32(g.N())
	chosen := map[graph.Edge]bool{}
	for len(ins) < nIns {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := graph.Edge{U: u, V: v}
		if g.HasEdge(u, v) || chosen[e] {
			continue
		}
		chosen[e] = true
		ins = append(ins, e)
	}
	edges := g.Edges()
	for len(del) < nDel {
		e := edges[rng.Intn(len(edges))]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		del = append(del, e)
	}
	return ins, del
}
