// Quickstart: the paper's running example (Fig. 1) end to end.
//
// Builds the 17-vertex example graph, opens it as a trussdiv.DB, runs
// top-1 truss-based structural diversity search with k = 4 through every
// registered engine, and prints the social contexts of the winner —
// reproducing score(v) = 3 with contexts {x1..x4}, {y1..y4}, {r1..r6}.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"trussdiv"
	"trussdiv/internal/gen"
)

func main() {
	ctx := context.Background()
	g := gen.Fig1Graph()
	names := gen.Fig1Names()
	fmt.Printf("graph G: %d vertices, %d edges (paper Fig. 1)\n\n", g.N(), g.M())

	db, err := trussdiv.Open(g)
	if err != nil {
		log.Fatal(err)
	}

	// The one-call path: score a single vertex (Algorithm 2 online, or
	// the GCT index once the DB has built it).
	score, err := db.Score(ctx, gen.Fig1V, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("score(v) at k=4: %d\n", score)

	// The search path: every truss-based engine answers the same top-1
	// query through the uniform Engine interface.
	q := trussdiv.NewQuery(4, 1, trussdiv.WithContexts())
	for _, name := range []string{"online", "bound", "tsd", "gct", "hybrid"} {
		engine, err := db.Engine(name)
		if err != nil {
			log.Fatal(err)
		}
		res, stats, err := engine.TopR(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		top := res.TopR[0]
		fmt.Printf("\n%-6s: top-1 = %s with score %d (computed %d scores)\n",
			name, names[top.V], top.Score, stats.ScoreComputations)
		for i, ctxMembers := range res.Contexts[top.V] {
			fmt.Printf("  social context %d:", i+1)
			for _, v := range ctxMembers {
				fmt.Printf(" %s", names[v])
			}
			fmt.Println()
		}
	}

	// Cost routing: with the indexes now warm, the DB sends the query to
	// the cheapest engine on its own.
	res, stats, err := db.TopR(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncost-routed query went to %q: top-1 = %s (score %d)\n",
		stats.Engine, names[res.TopR[0].V], res.TopR[0].Score)

	// The non-symmetry observation the paper builds its pruning theory on.
	scorer := trussdiv.NewScorer(g)
	fmt.Printf("\nnon-symmetry (Obs. 1): tau_ego(v)(r1,r2) = %d, tau_ego(r1)(v,r2) = %d\n",
		scorer.EgoTrussness(gen.Fig1V, gen.Fig1R1, gen.Fig1R2),
		scorer.EgoTrussness(gen.Fig1R1, gen.Fig1V, gen.Fig1R2))
}
