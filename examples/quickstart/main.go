// Quickstart: the paper's running example (Fig. 1) end to end.
//
// Builds the 17-vertex example graph, runs top-1 truss-based structural
// diversity search with k = 4 through every engine, and prints the social
// contexts of the winner — reproducing score(v) = 3 with contexts
// {x1..x4}, {y1..y4}, {r1..r6}.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
)

func main() {
	g := gen.Fig1Graph()
	names := gen.Fig1Names()
	fmt.Printf("graph G: %d vertices, %d edges (paper Fig. 1)\n\n", g.N(), g.M())

	// The one-call path: score a single vertex online (Algorithm 2).
	scorer := core.NewScorer(g)
	fmt.Printf("score(v) at k=4: %d\n", scorer.Score(gen.Fig1V, 4))

	// The search path: every engine answers the same top-1 query.
	engines := []struct {
		name     string
		searcher interface {
			TopR(int32, int) (*core.Result, *core.Stats, error)
		}
	}{
		{"online (Alg. 3)", core.NewOnline(g)},
		{"bound  (Alg. 4)", core.NewBound(g)},
		{"TSD    (Alg. 5-6)", core.NewTSD(core.BuildTSDIndex(g))},
		{"GCT    (Alg. 7-8)", core.NewGCT(core.BuildGCTIndex(g))},
	}
	for _, e := range engines {
		res, stats, err := e.searcher.TopR(4, 1)
		if err != nil {
			log.Fatal(err)
		}
		top := res.TopR[0]
		fmt.Printf("\n%s: top-1 = %s with score %d (computed %d scores)\n",
			e.name, names[top.V], top.Score, stats.ScoreComputations)
		for i, ctx := range res.Contexts[top.V] {
			fmt.Printf("  social context %d:", i+1)
			for _, v := range ctx {
				fmt.Printf(" %s", names[v])
			}
			fmt.Println()
		}
	}

	// The non-symmetry observation the paper builds its pruning theory on.
	fmt.Printf("\nnon-symmetry (Obs. 1): tau_ego(v)(r1,r2) = %d, tau_ego(r1)(v,r2) = %d\n",
		scorer.EgoTrussness(gen.Fig1V, gen.Fig1R1, gen.Fig1R2),
		scorer.EgoTrussness(gen.Fig1R1, gen.Fig1V, gen.Fig1R2))
}
