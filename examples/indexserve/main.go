// Indexserve: build the TSD and GCT indexes once, persist them to disk,
// reload, and answer a stream of (k, r) queries through a trussdiv.DB
// seeded with the reloaded indexes — the "index once, query many"
// workflow both indexes were designed for (paper §5-§6). Prints the
// per-query latency of TSD vs GCT (each sharded across a worker pool via
// WithWorkers), the size of each artifact, where the DB's cost router
// sends the same queries, and finally answers the whole workload in one
// DB.Batch pass.
//
// Run with: go run ./examples/indexserve
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"trussdiv"
	"trussdiv/internal/gen"
)

func main() {
	ctx := context.Background()
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 10000, Attach: 4, Cliques: 1500, MinSize: 4, MaxSize: 12, Seed: 3,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	dir, err := os.MkdirTemp("", "trussdiv-index-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build and persist both indexes.
	start := time.Now()
	tsdIdx := trussdiv.BuildTSDIndex(g)
	fmt.Printf("TSD-index built in %v\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	gctIdx := trussdiv.BuildGCTIndex(g)
	fmt.Printf("GCT-index built in %v\n", time.Since(start).Round(time.Millisecond))

	tsdPath := filepath.Join(dir, "graph.tsd")
	gctPath := filepath.Join(dir, "graph.gct")
	persist(tsdPath, tsdIdx.WriteTo)
	persist(gctPath, gctIdx.WriteTo)

	// Reload from disk — a fresh process would start here — and seed a DB
	// with the recovered indexes: both index engines are ready with no
	// rebuild.
	tsdFile, err := os.Open(tsdPath)
	if err != nil {
		log.Fatal(err)
	}
	defer tsdFile.Close()
	tsdLoaded, err := trussdiv.ReadTSDIndex(tsdFile, g)
	if err != nil {
		log.Fatal(err)
	}
	gctFile, err := os.Open(gctPath)
	if err != nil {
		log.Fatal(err)
	}
	defer gctFile.Close()
	gctLoaded, err := trussdiv.ReadGCTIndex(gctFile, g)
	if err != nil {
		log.Fatal(err)
	}
	db, err := trussdiv.Open(g,
		trussdiv.WithTSDIndex(tsdLoaded), trussdiv.WithGCTIndex(gctLoaded))
	if err != nil {
		log.Fatal(err)
	}

	// Serve a mixed query workload: the same DB answers every (k, r),
	// each search sharded across the machine's cores.
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("\nquery workload (one index build, many queries, %d workers):\n", workers)
	fmt.Printf("%4s %4s  %12s %12s  %-8s %s\n", "k", "r", "TSD", "GCT", "routed", "top-1 (score)")
	tsd, err := db.Engine("tsd")
	if err != nil {
		log.Fatal(err)
	}
	gct, err := db.Engine("gct")
	if err != nil {
		log.Fatal(err)
	}
	workload := []trussdiv.Query{
		trussdiv.NewQuery(3, 10, trussdiv.WithWorkers(workers)),
		trussdiv.NewQuery(3, 100, trussdiv.WithWorkers(workers)),
		trussdiv.NewQuery(4, 10, trussdiv.WithWorkers(workers)),
		trussdiv.NewQuery(4, 100, trussdiv.WithWorkers(workers)),
		trussdiv.NewQuery(5, 10, trussdiv.WithWorkers(workers)),
		trussdiv.NewQuery(6, 10, trussdiv.WithWorkers(workers)),
	}
	for _, q := range workload {
		t0 := time.Now()
		resT, _, err := tsd.TopR(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		tsdTime := time.Since(t0)
		t0 = time.Now()
		resG, _, err := gct.TopR(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		gctTime := time.Since(t0)
		if resT.TopR[0].Score != resG.TopR[0].Score {
			log.Fatalf("engines disagree at k=%d r=%d", q.K, q.R)
		}
		routed := db.Route(q).Name()
		fmt.Printf("%4d %4d  %12v %12v  %-8s vertex %d (%d)\n",
			q.K, q.R, tsdTime.Round(time.Microsecond), gctTime.Round(time.Microsecond),
			routed, resG.TopR[0].V, resG.TopR[0].Score)
	}

	// The same workload as one batch: the DB resolves every engine up
	// front (amortizing index builds over the batch) and fans the queries
	// out across a worker pool. Answers are byte-identical to the
	// one-at-a-time runs above.
	t0 := time.Now()
	batched, err := db.Batch(ctx, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDB.Batch answered all %d queries in %v\n",
		len(batched), time.Since(t0).Round(time.Microsecond))
	for i, q := range workload {
		top := batched[i].TopR[0]
		fmt.Printf("  k=%d r=%-3d -> vertex %d (score %d)\n", q.K, q.R, top.V, top.Score)
	}
}

func persist(path string, writeTo func(w io.Writer) (int64, error)) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := writeTo(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %s (%d bytes)\n", filepath.Base(path), n)
}
