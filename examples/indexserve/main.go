// Indexserve: build the TSD and GCT indexes once, persist them to disk,
// reload, and answer a stream of (k, r) queries — the "index once, query
// many" workflow both indexes were designed for (paper §5-§6). Prints the
// per-query latency of TSD vs GCT and the size of each artifact.
//
// Run with: go run ./examples/indexserve
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
)

func main() {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 10000, Attach: 4, Cliques: 1500, MinSize: 4, MaxSize: 12, Seed: 3,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	dir, err := os.MkdirTemp("", "trussdiv-index-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build and persist both indexes.
	start := time.Now()
	tsdIdx := core.BuildTSDIndex(g)
	fmt.Printf("TSD-index built in %v\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	gctIdx := core.BuildGCTIndex(g)
	fmt.Printf("GCT-index built in %v\n", time.Since(start).Round(time.Millisecond))

	tsdPath := filepath.Join(dir, "graph.tsd")
	gctPath := filepath.Join(dir, "graph.gct")
	persist(tsdPath, tsdIdx.WriteTo)
	persist(gctPath, gctIdx.WriteTo)

	// Reload from disk — a fresh process would start here.
	tsdFile, err := os.Open(tsdPath)
	if err != nil {
		log.Fatal(err)
	}
	defer tsdFile.Close()
	tsdLoaded, err := core.ReadTSDIndex(tsdFile, g)
	if err != nil {
		log.Fatal(err)
	}
	gctFile, err := os.Open(gctPath)
	if err != nil {
		log.Fatal(err)
	}
	defer gctFile.Close()
	gctLoaded, err := core.ReadGCTIndex(gctFile, g)
	if err != nil {
		log.Fatal(err)
	}

	// Serve a mixed query workload: the same index answers every (k, r).
	fmt.Println("\nquery workload (one index build, many queries):")
	fmt.Printf("%4s %4s  %12s %12s  %s\n", "k", "r", "TSD", "GCT", "top-1 (score)")
	tsd := core.NewTSD(tsdLoaded)
	gct := core.NewGCT(gctLoaded)
	for _, q := range []struct {
		k int32
		r int
	}{{3, 10}, {3, 100}, {4, 10}, {4, 100}, {5, 10}, {6, 10}} {
		t0 := time.Now()
		resT, _, err := tsd.TopR(q.k, q.r)
		if err != nil {
			log.Fatal(err)
		}
		tsdTime := time.Since(t0)
		t0 = time.Now()
		resG, _, err := gct.TopR(q.k, q.r)
		if err != nil {
			log.Fatal(err)
		}
		gctTime := time.Since(t0)
		if resT.TopR[0].Score != resG.TopR[0].Score {
			log.Fatalf("engines disagree at k=%d r=%d", q.k, q.r)
		}
		fmt.Printf("%4d %4d  %12v %12v  vertex %d (%d)\n",
			q.k, q.r, tsdTime.Round(time.Microsecond), gctTime.Round(time.Microsecond),
			resG.TopR[0].V, resG.TopR[0].Score)
	}
}

func persist(path string, writeTo func(w io.Writer) (int64, error)) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := writeTo(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %s (%d bytes)\n", filepath.Base(path), n)
}
