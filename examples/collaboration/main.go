// Collaboration: the DBLP case study (paper §7.3) on a synthetic
// co-authorship network.
//
// Finds the most structurally diverse author under three diversity models
// — all reachable as engines of one trussdiv.DB — and shows why only the
// truss-based model decomposes a bridged, hub-centered ego-network into
// meaningful research groups (paper Figs. 16-17, Table 5).
//
// Run with: go run ./examples/collaboration
package main

import (
	"context"
	"fmt"
	"log"

	"trussdiv"
	"trussdiv/internal/ego"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
)

func main() {
	const k = 5
	ctx := context.Background()
	g := gen.Collaboration(gen.DefaultCollabConfig())
	fmt.Printf("co-authorship network: %d authors, %d strong ties\n\n", g.N(), g.M())

	db, err := trussdiv.Open(g)
	if err != nil {
		log.Fatal(err)
	}

	// Truss-based winner; the DB routes to the cheapest exact engine.
	q := trussdiv.NewQuery(k, 1, trussdiv.WithContexts())
	res, stats, err := db.TopR(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	winner := res.TopR[0]
	fmt.Printf("Truss-Div top-1 (engine %q): author %d with %d research communities (k=%d)\n",
		stats.Engine, winner.V, winner.Score, k)
	for i, members := range res.Contexts[winner.V] {
		fmt.Printf("  community %d: %d collaborators %v\n", i+1, len(members), members)
	}

	// The same ego-network under the competing models, which are
	// registered as explicit-name engines of the same DB.
	comp, err := db.Engine("comp")
	if err != nil {
		log.Fatal(err)
	}
	kcore, err := db.Engine("kcore")
	if err != nil {
		log.Fatal(err)
	}
	net := ego.ExtractOne(g, winner.V)
	_, comps := net.G.ConnectedComponents()
	fmt.Printf("\nego-network of author %d: %d collaborators, %d ties, %d connected component(s)\n",
		winner.V, len(net.Verts), net.G.M(), comps)
	compScore, err := comp.Score(ctx, winner.V, k)
	if err != nil {
		log.Fatal(err)
	}
	coreScore, err := kcore.Score(ctx, winner.V, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Comp-Div sees %d context(s)  (weak ties glue everything together)\n", compScore)
	fmt.Printf("  Core-Div sees %d context(s)  (bridged blocks stay one connected 5-core)\n", coreScore)
	fmt.Printf("  Truss-Div sees %d contexts  (bridges have no triangles, so 5-trusses split)\n\n",
		winner.Score)

	// Whom would the other models have crowned?
	for _, name := range []string{"comp", "kcore"} {
		engine, err := db.Engine(name)
		if err != nil {
			log.Fatal(err)
		}
		top, _, err := engine.TopR(ctx, trussdiv.NewQuery(k, 1))
		if err != nil {
			log.Fatal(err)
		}
		e := top.TopR[0]
		nv, mv := egoSize(g, e.V)
		fmt.Printf("%s top-1: author %d, %d contexts, ego |V|=%d |E|=%d density %.2f\n",
			name, e.V, e.Score, nv, mv, float64(mv)/float64(nv))
	}
	nv, mv := egoSize(g, winner.V)
	fmt.Printf("Truss-Div top-1: author %d, %d contexts, ego |V|=%d |E|=%d density %.2f (densest)\n",
		winner.V, winner.Score, nv, mv, float64(mv)/float64(nv))
}

func egoSize(g *graph.Graph, v int32) (int, int) {
	net := ego.ExtractOne(g, v)
	return len(net.Verts), net.G.M()
}
