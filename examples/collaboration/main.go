// Collaboration: the DBLP case study (paper §7.3) on a synthetic
// co-authorship network.
//
// Finds the most structurally diverse author under three diversity models
// and shows why only the truss-based model decomposes a bridged,
// hub-centered ego-network into meaningful research groups (paper Figs.
// 16-17, Table 5).
//
// Run with: go run ./examples/collaboration
package main

import (
	"fmt"
	"log"

	"trussdiv/internal/baseline"
	"trussdiv/internal/core"
	"trussdiv/internal/ego"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
)

func main() {
	const k = 5
	g := gen.Collaboration(gen.DefaultCollabConfig())
	fmt.Printf("co-authorship network: %d authors, %d strong ties\n\n", g.N(), g.M())

	// Truss-based winner via the GCT index.
	res, _, err := core.NewGCT(core.BuildGCTIndex(g)).TopR(k, 1)
	if err != nil {
		log.Fatal(err)
	}
	winner := res.TopR[0]
	fmt.Printf("Truss-Div top-1: author %d with %d research communities (k=%d)\n",
		winner.V, winner.Score, k)
	for i, ctx := range res.Contexts[winner.V] {
		fmt.Printf("  community %d: %d collaborators %v\n", i+1, len(ctx), ctx)
	}

	// The same ego-network under the competing models.
	net := ego.ExtractOne(g, winner.V)
	_, comps := net.G.ConnectedComponents()
	fmt.Printf("\nego-network of author %d: %d collaborators, %d ties, %d connected component(s)\n",
		winner.V, len(net.Verts), net.G.M(), comps)
	fmt.Printf("  Comp-Div sees %d context(s)  (weak ties glue everything together)\n",
		baseline.NewCompDiv(g).Score(winner.V, k))
	fmt.Printf("  Core-Div sees %d context(s)  (bridged blocks stay one connected 5-core)\n",
		baseline.NewCoreDiv(g).Score(winner.V, k))
	fmt.Printf("  Truss-Div sees %d contexts  (bridges have no triangles, so 5-trusses split)\n\n",
		winner.Score)

	// Whom would the other models have crowned?
	comp, err := baseline.TopR(baseline.NewCompDiv(g), g.N(), k, 1)
	if err != nil {
		log.Fatal(err)
	}
	coreTop, err := baseline.TopR(baseline.NewCoreDiv(g), g.N(), k, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range []struct {
		model string
		v     int32
		score int
	}{
		{"Comp-Div", comp[0].V, comp[0].Score},
		{"Core-Div", coreTop[0].V, coreTop[0].Score},
	} {
		nv, mv := egoSize(g, row.v)
		fmt.Printf("%s top-1: author %d, %d contexts, ego |V|=%d |E|=%d density %.2f\n",
			row.model, row.v, row.score, nv, mv, float64(mv)/float64(nv))
	}
	nv, mv := egoSize(g, winner.V)
	fmt.Printf("Truss-Div top-1: author %d, %d contexts, ego |V|=%d |E|=%d density %.2f (densest)\n",
		winner.V, winner.Score, nv, mv, float64(mv)/float64(nv))
}

func egoSize(g *graph.Graph, v int32) (int, int) {
	net := ego.ExtractOne(g, v)
	return len(net.Verts), net.G.M()
}
