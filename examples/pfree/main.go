// PFree: parameter-free structural diversity search — top-r without
// choosing a k.
//
// Every fixed-k query bakes in a guess: k=3 rewards vertices with many
// loose contexts, k=6 rewards a few dense ones, and no single threshold
// is right for every vertex. The pfree engine removes the guess with a
// generalized h-index over the all-k score vector: pfree(v) is the
// largest h with score(v, max(h,2)) >= h, so each vertex is judged at
// its own discriminating level.
//
// This example opens a synthetic community network, runs the k-less
// query (NewQuery with k=0 routes to pfree), and contrasts its top-10
// with the fixed-k answers at k=3..6: which vertices every threshold
// agrees on, and which only the parameter-free objective surfaces. It
// finishes with the point query — one vertex's pfree score and the
// level it was earned at.
//
// Run with: go run ./examples/pfree
package main

import (
	"context"
	"fmt"
	"log"

	"trussdiv"
)

func main() {
	ctx := context.Background()
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 800, Attach: 3, Cliques: 160, MinSize: 4, MaxSize: 9, Seed: 21,
	})
	db, err := trussdiv.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	// Prepare the pfree rankings once; afterwards every k-less top-r is
	// an O(r) prefix read. (Skipping this works too — the engine falls
	// back to scoring all-k vectors online, same answers.)
	if err := db.Prepare(ctx, "pfree"); err != nil {
		log.Fatal(err)
	}

	const r = 10
	// k=0 builds a parameter-free query; the DB routes it to pfree.
	pf, _, err := db.TopR(ctx, trussdiv.NewQuery(0, r))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameter-free top-%d (engine=pfree, k chosen per vertex):\n", r)
	for rank, e := range pf.TopR {
		fmt.Printf("%3d. vertex %-6d pfree score %d\n", rank+1, e.V, e.Score)
	}
	fmt.Println()

	// The same question with a threshold: four different k, four
	// different rankings — each one a different guess about what
	// "diverse" means.
	ks := []int32{3, 4, 5, 6}
	fixed := map[int32]map[int32]bool{}
	for _, k := range ks {
		res, _, err := db.TopR(ctx, trussdiv.NewQuery(k, r))
		if err != nil {
			log.Fatal(err)
		}
		in := map[int32]bool{}
		for _, e := range res.TopR {
			in[e.V] = true
		}
		fixed[k] = in
		fmt.Printf("fixed k=%d top-%d: %v\n", k, r, vertices(res.TopR))
	}
	fmt.Println()

	// Where the parameter-free answer departs from every fixed guess.
	consensus, only := 0, []int32{}
	for _, e := range pf.TopR {
		everywhere, anywhere := true, false
		for _, k := range ks {
			if fixed[k][e.V] {
				anywhere = true
			} else {
				everywhere = false
			}
		}
		if everywhere {
			consensus++
		}
		if !anywhere {
			only = append(only, e.V)
		}
	}
	fmt.Printf("of the pfree top-%d: %d appear in every fixed-k top-%d, %d in none of them %v\n\n",
		r, consensus, r, len(only), only)

	// The point query: one vertex's parameter-free score and the
	// discriminating level it was earned at (k* = max(score, 2)).
	v := pf.TopR[0].V
	score, err := db.ScorePFree(ctx, v, trussdiv.MeasureTruss)
	if err != nil {
		log.Fatal(err)
	}
	contexts, err := db.ContextsPFree(ctx, v, trussdiv.MeasureTruss)
	if err != nil {
		log.Fatal(err)
	}
	level := int32(2)
	if score > 2 {
		level = int32(score)
	}
	fmt.Printf("vertex %d: pfree score %d — it keeps %d contexts at its own level k*=%d\n",
		v, score, len(contexts), level)
}

func vertices(entries []trussdiv.VertexScore) []int32 {
	out := make([]int32, len(entries))
	for i, e := range entries {
		out[i] = e.V
	}
	return out
}
