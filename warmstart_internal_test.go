package trussdiv

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"reflect"
	"testing"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
	"trussdiv/internal/store"
)

// TestWarmOpenNeverBuilds pins the warm-start contract: once a complete
// index store exists, a new DB serves every prepared engine purely from
// disk — the builders are never entered. The cache's build entry points
// are swapped for tripwires, so any regression that silently rebuilds
// (and re-pays the truss decomposition on deploy) fails loudly.
func TestWarmOpenNeverBuilds(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 400, Attach: 3, Cliques: 80, MinSize: 4, MaxSize: 7, Seed: 5,
	})
	dir := t.TempDir()
	ctx := context.Background()

	seed, err := Open(g, WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	// The default set plus pfree, so the store also carries the
	// parameter-free rankings of every measure.
	if err := seed.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if err := seed.Prepare(ctx, "pfree"); err != nil {
		t.Fatal(err)
	}
	if seed.Snapshot().cache.builds == 0 {
		t.Fatal("seeding DB built nothing; the tripwires below would prove nothing")
	}
	if st := seed.StoreStatus(); st.SaveErr != nil {
		t.Fatalf("persist failed: %v", st.SaveErr)
	}

	warm, err := Open(g, WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	warm.Snapshot().cache.buildTau = func(*Graph) (tau, sup []int32) {
		t.Error("warm DB rebuilt the truss decomposition")
		return nil, nil
	}
	warm.Snapshot().cache.buildTSD = func(g *Graph) *core.TSDIndex {
		t.Error("warm DB rebuilt the TSD index")
		return core.BuildTSDIndex(g)
	}
	warm.Snapshot().cache.buildGCT = func(g *Graph) *core.GCTIndex {
		t.Error("warm DB rebuilt the GCT index")
		return core.BuildGCTIndex(g)
	}
	warm.Snapshot().cache.buildHybrid = func(idx *core.GCTIndex) *core.Hybrid {
		t.Error("warm DB rebuilt the hybrid rankings")
		return core.BuildHybrid(idx)
	}

	if err := warm.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"online", "bound", "tsd", "gct", "hybrid"} {
		if _, _, err := warm.TopR(ctx, NewQuery(3, 10, ViaEngine(engine), WithContexts())); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
	// The k-less cell warm starts too: every measure's pfree ranking is
	// served from the store slab, never re-derived.
	for _, m := range AllMeasures() {
		if _, _, err := warm.TopR(ctx, NewQuery(0, 10, ViaEngine("pfree"), WithMeasure(m))); err != nil {
			t.Fatalf("pfree/%s: %v", m, err)
		}
	}
	if _, err := warm.Score(ctx, 0, 3); err != nil {
		t.Fatal(err)
	}
	if warm.Snapshot().cache.builds != 0 {
		t.Fatalf("warm DB performed %d builds; want 0", warm.Snapshot().cache.builds)
	}
	if st := warm.IndexStats(); st.LoadTime == 0 {
		t.Fatal("warm DB reports zero load time; nothing was read from the store")
	}
	st := warm.StoreStatus()
	if st.FormatVersion != store.Version {
		t.Fatalf("warm store FormatVersion = %d, want %d", st.FormatVersion, store.Version)
	}
	if st.Mode == StoreMmap {
		// The stronger v3 tripwire: a mapped warm start decodes nothing —
		// every section above was served as a view over the mapping.
		if n := warm.Snapshot().cache.file.PayloadReads(); n != 0 {
			t.Fatalf("mmap warm DB performed %d payload reads; want 0", n)
		}
	}
}

// TestWarmOpenDecodeMode pins the WithStoreMode(StoreDecode) escape hatch:
// the same warm start works with the mapping disabled, reads sections the
// classic way, and reports the mode it actually used.
func TestWarmOpenDecodeMode(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 6,
	})
	dir := t.TempDir()
	ctx := context.Background()

	seed, err := Open(g, WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Prepare(ctx); err != nil {
		t.Fatal(err)
	}

	warm, err := Open(g, WithIndexDir(dir), WithStoreMode(StoreDecode))
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if warm.Snapshot().cache.builds != 0 {
		t.Fatalf("decode-mode warm DB performed %d builds; want 0", warm.Snapshot().cache.builds)
	}
	st := warm.StoreStatus()
	if !st.Warm || st.Mode != StoreDecode {
		t.Fatalf("store status = %+v, want warm in decode mode", st)
	}
	if n := warm.Snapshot().cache.file.PayloadReads(); n == 0 {
		t.Fatal("decode-mode warm DB reports 0 payload reads; counter broken")
	}
}

// TestDamagedSectionKeepsSiblings corrupts exactly one section of a full
// store file (a TSD slab count word, so the decode CRC and the mmap
// structural validation both reject it) and checks two things per-section
// damage handling exists for: the sibling sections still load (no
// whole-file demotion), and the post-rebuild persist keeps them instead
// of writing a file holding only the rebuilt section.
func TestDamagedSectionKeepsSiblings(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 9,
	})
	dir := t.TempDir()
	ctx := context.Background()

	seed, err := Open(g, WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	path := store.PathIn(dir)

	// Flip one byte inside the TSD section's payload, located via the TOC
	// (header: 44 bytes; v2 entries: {id u32, measure u32, crc u32,
	// off u64, len u64}).
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	count := int(binary.LittleEndian.Uint32(blob[40:44]))
	found := false
	for i := 0; i < count; i++ {
		e := blob[44+28*i:]
		if store.Section(binary.LittleEndian.Uint32(e[0:4])) == store.SecTSD {
			off := binary.LittleEndian.Uint64(e[12:20])
			blob[off+20] ^= 0xFF
			found = true
		}
	}
	if !found {
		t.Fatal("no TSD section in the persisted file")
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(g, WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	// The damaged section must rebuild (builds == 1)...
	if _, _, err := db.TopR(ctx, NewQuery(3, 5, ViaEngine("tsd"))); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(db.StoreStatus().LoadErr, ErrIndexCorrupt) {
		t.Fatalf("LoadErr = %v, want ErrIndexCorrupt", db.StoreStatus().LoadErr)
	}
	if db.Snapshot().cache.builds != 1 {
		t.Fatalf("builds = %d, want exactly the damaged section rebuilt", db.Snapshot().cache.builds)
	}
	// ...while its siblings still load from disk, not from builders.
	if err := db.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if db.Snapshot().cache.builds != 1 {
		t.Fatalf("builds = %d after Prepare; sibling sections were rebuilt instead of loaded",
			db.Snapshot().cache.builds)
	}
	// And the rebuild's persist kept every section: a fresh open is fully
	// warm again.
	healed, err := Open(g, WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := healed.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	st := healed.StoreStatus()
	if !st.Warm || len(st.Sections) != 7 {
		t.Fatalf("store after heal: %+v, want all 6 index sections plus the epoch", st)
	}
	if healed.Snapshot().cache.builds != 0 {
		t.Fatalf("healed open built %d times; want 0", healed.Snapshot().cache.builds)
	}
}

// TestDamagedPFreeSectionRebuildsAlone extends the corruption taxonomy
// to the parameter-free slab, in both read modes: with one measure's
// pfree section damaged (its count word inflated, so the decode CRC and
// the mmap structural validation both reject it), the k-less query for
// that measure still answers correctly — re-derived from the intact
// per-k sections, without entering a builder — while the sibling pfree
// sections keep loading from disk, and the rebuild's persist heals the
// file for the next open.
func TestDamagedPFreeSectionRebuildsAlone(t *testing.T) {
	for _, mode := range []StoreMode{StoreMmap, StoreDecode} {
		t.Run(mode.String(), func(t *testing.T) {
			g := gen.CommunityOverlay(gen.OverlayConfig{
				N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 11,
			})
			dir := t.TempDir()
			ctx := context.Background()

			seed, err := Open(g, WithIndexDir(dir))
			if err != nil {
				t.Fatal(err)
			}
			if err := seed.Prepare(ctx); err != nil {
				t.Fatal(err)
			}
			if err := seed.Prepare(ctx, "pfree"); err != nil {
				t.Fatal(err)
			}
			if st := seed.StoreStatus(); st.SaveErr != nil {
				t.Fatal(st.SaveErr)
			}
			want := map[Measure]*Result{}
			for _, m := range AllMeasures() {
				res, _, err := seed.TopR(ctx, NewQuery(0, 10, ViaEngine("pfree"), WithMeasure(m)))
				if err != nil {
					t.Fatal(err)
				}
				want[m] = res
			}
			path := store.PathIn(dir)

			// Inflate the count word of the truss-measure pfree section: the
			// decode CRC fails on the flipped bytes and the mmap validation
			// rejects count > n, so both modes classify it corrupt.
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			count := int(binary.LittleEndian.Uint32(blob[40:44]))
			found := false
			for i := 0; i < count; i++ {
				e := blob[44+28*i:]
				if store.Section(binary.LittleEndian.Uint32(e[0:4])) == store.SecPFree &&
					binary.LittleEndian.Uint32(e[4:8]) == 0 { // measure tag: truss
					off := binary.LittleEndian.Uint64(e[12:20])
					binary.LittleEndian.PutUint64(blob[off:], ^uint64(0))
					found = true
				}
			}
			if !found {
				t.Fatal("no truss-measure pfree section in the persisted file")
			}
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}

			db, err := Open(g, WithIndexDir(dir), WithStoreMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range AllMeasures() {
				got, _, err := db.TopR(ctx, NewQuery(0, 10, ViaEngine("pfree"), WithMeasure(m)))
				if err != nil {
					t.Fatalf("%s: %v", m, err)
				}
				if !reflect.DeepEqual(got.TopR, want[m].TopR) {
					t.Fatalf("%s: answer over the damaged store diverges from the seed", m)
				}
			}
			if !errors.Is(db.StoreStatus().LoadErr, ErrIndexCorrupt) {
				t.Fatalf("LoadErr = %v, want ErrIndexCorrupt", db.StoreStatus().LoadErr)
			}
			// The damaged slab was re-derived from the intact per-k sections
			// in O(table) — no builder ran for it or for its siblings.
			if n := db.Snapshot().cache.builds; n != 0 {
				t.Fatalf("builds = %d, want 0 (pfree re-derives from per-k tables)", n)
			}

			// The re-derivation persisted: a fresh open is fully warm again.
			healed, err := Open(g, WithIndexDir(dir), WithStoreMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			if st := healed.StoreStatus(); st.LoadErr != nil {
				t.Fatalf("healed store still rejects a section: %v", st.LoadErr)
			}
			for _, m := range AllMeasures() {
				got, _, err := healed.TopR(ctx, NewQuery(0, 10, ViaEngine("pfree"), WithMeasure(m)))
				if err != nil {
					t.Fatalf("healed %s: %v", m, err)
				}
				if !reflect.DeepEqual(got.TopR, want[m].TopR) {
					t.Fatalf("healed %s: answer diverges from the seed", m)
				}
			}
			if n := healed.Snapshot().cache.builds; n != 0 {
				t.Fatalf("healed open built %d times; want 0", n)
			}
		})
	}
}
