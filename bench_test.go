// Package trussdiv's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (§7) under `go test -bench`. Each
// benchmark wraps one experiment of internal/bench in quick mode (small
// datasets, reduced Monte-Carlo runs); run `go run ./cmd/tsdbench` for the
// full-scale versions and human-readable tables.
//
// Ablation benchmarks at the bottom measure the design choices DESIGN.md
// calls out: bitmap vs merge peeling, one-shot vs per-vertex ego
// extraction, sparsification, and the pruning bounds.
package trussdiv_test

import (
	"io"
	"testing"

	"trussdiv/internal/bench"
	"trussdiv/internal/cascade"
	"trussdiv/internal/core"
	"trussdiv/internal/ego"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

var quickCfg = bench.Config{Quick: true, Seed: 1, MCRuns: 120}

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, quickCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact ---

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkTable2(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig8(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)     { benchExperiment(b, "fig15") }
func BenchmarkCaseStudy(b *testing.B) { benchExperiment(b, "exp10") }
func BenchmarkTable5(b *testing.B)    { benchExperiment(b, "table5") }

// --- Micro-benchmarks of the individual engines (one dataset) ---

func benchGraph() *graph.Graph { return bench.MustLoad("wiki-sim") }

func BenchmarkOnlineSearch(b *testing.B) {
	g := benchGraph()
	s := core.NewOnline(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.TopR(3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoundSearch(b *testing.B) {
	g := benchGraph()
	s := core.NewBound(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.TopR(3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSDSearch(b *testing.B) {
	s := core.NewTSD(core.BuildTSDIndex(benchGraph()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.TopR(3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGCTSearch(b *testing.B) {
	s := core.NewGCT(core.BuildGCTIndex(benchGraph()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.TopR(3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSDIndexBuild(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildTSDIndex(g)
	}
}

func BenchmarkGCTIndexBuild(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildGCTIndex(g)
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationPeelingMerge vs ...Bitmap: merge-intersection peeling
// against bitmap peeling over every ego-network of the benchmark graph.
func BenchmarkAblationPeelingMerge(b *testing.B) {
	g := benchGraph()
	all := ego.ExtractAll(g)
	nets := materialize(g, all)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, net := range nets {
			truss.Decompose(net.G)
		}
	}
}

func BenchmarkAblationPeelingBitmap(b *testing.B) {
	g := benchGraph()
	all := ego.ExtractAll(g)
	nets := materialize(g, all)
	var bd truss.BitmapDecomposer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, net := range nets {
			bd.Decompose(net.G)
		}
	}
}

func materialize(g *graph.Graph, all *ego.All) []*ego.Network {
	var nets []*ego.Network
	for v := int32(0); int(v) < g.N(); v++ {
		if all.EdgeCount(v) > 0 {
			nets = append(nets, all.Network(v))
		}
	}
	return nets
}

// BenchmarkAblationEgoPerVertex vs ...OneShot: the Table 4 contrast as a
// tight loop — per-vertex local triangle listing vs one-shot global
// listing for extracting every ego-network.
func BenchmarkAblationEgoPerVertex(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := int32(0); int(v) < g.N(); v++ {
			ego.ExtractOne(g, v)
		}
	}
}

func BenchmarkAblationEgoOneShot(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := ego.ExtractAll(g)
		for v := int32(0); int(v) < g.N(); v++ {
			if all.EdgeCount(v) > 0 {
				all.Network(v)
			}
		}
	}
}

// BenchmarkAblationSparsify measures Property-1 sparsification itself:
// the cost of the global truss decomposition buy-in.
func BenchmarkAblationSparsify(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Sparsify(g, 4)
	}
}

// BenchmarkAblationBoundsLemma2 vs ...TSD: pruning power is reported as
// search space in Fig. 9; here we measure the bound computation cost for
// all vertices.
func BenchmarkAblationBoundsLemma2(b *testing.B) {
	g := benchGraph()
	mv := g.TrianglesPerVertex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := int32(0); int(v) < g.N(); v++ {
			core.UpperBound(g.Degree(v), mv[v], 4)
		}
	}
}

func BenchmarkAblationBoundsTSD(b *testing.B) {
	idx := core.BuildTSDIndex(benchGraph())
	g := idx.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := int32(0); int(v) < g.N(); v++ {
			idx.ScoreUpperBound(v, 4)
		}
	}
}

// BenchmarkScoreSingleVertex measures Algorithm 2 on the highest-degree
// vertex (the worst single ego-network).
func BenchmarkScoreSingleVertex(b *testing.B) {
	g := benchGraph()
	scorer := core.NewScorer(g)
	hub := int32(0)
	for v := int32(0); int(v) < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scorer.Score(hub, 4)
	}
}

// BenchmarkTrussDecomposition measures global truss decomposition, the
// substrate both sparsification and Table 1 rely on.
func BenchmarkTrussDecomposition(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truss.Decompose(g)
	}
}

// BenchmarkCascadeMonteCarlo measures the effectiveness substrate.
func BenchmarkCascadeMonteCarlo(b *testing.B) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 4000, Attach: 4, Cliques: 600, MinSize: 4, MaxSize: 10, Seed: 9,
	})
	ic := cascade.NewIC(g, 0.05)
	seeds := []int32{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ic.MonteCarlo(seeds, 50, 3)
	}
}

// --- Extension benchmarks: parallel construction and dynamic updates ---

func BenchmarkTSDIndexBuildParallel(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildTSDIndexParallel(g, 0)
	}
}

func BenchmarkGCTIndexBuildParallel(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildGCTIndexParallel(g, 0)
	}
}

// BenchmarkDynamicUpdate measures the incremental repair of a 10-edge
// batch against BenchmarkTSDIndexBuild (the full-rebuild alternative).
func BenchmarkDynamicUpdate(b *testing.B) {
	g := benchGraph()
	base := core.BuildTSDIndex(g)
	var ins []graph.Edge
	for u := int32(0); len(ins) < 10; u++ {
		v := u + int32(g.N()/2)
		if int(v) < g.N() && !g.HasEdge(u, v) {
			ins = append(ins, graph.Edge{U: u, V: v})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		updated, _, err := base.Update(ins, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Revert so every iteration applies the same batch.
		base, _, err = updated.Update(nil, ins)
		if err != nil {
			b.Fatal(err)
		}
	}
}
