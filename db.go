package trussdiv

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trussdiv/internal/core"
	"trussdiv/internal/store"
)

// DB is the query facade over one evolving graph. Queries always run
// against a consistent, epoch-numbered Snapshot (db.Snapshot() pins one
// explicitly; every query method grabs the current snapshot once per
// call), and Apply installs the next snapshot copy-on-write with the
// search indexes repaired incrementally. Within a snapshot the DB owns
// the engine registry, lazily builds and caches the search indexes, and
// routes each query to the engine whose cost estimate is lowest (unless
// the caller pinned one with WithEngine). A DB is safe for concurrent
// use, including queries concurrent with Apply.
type DB struct {
	snap atomic.Pointer[Snapshot]

	// results is the serving-side result cache, shared by every snapshot
	// the DB installs (nil when disabled). Entries are keyed by epoch, so
	// the cache never needs locking against Apply: the epoch bump is the
	// invalidation.
	results *resultCache

	// applyMu serializes the writers: Apply and Register both swap or
	// extend snapshot state. Readers never take it.
	applyMu sync.Mutex
	custom  []customEngine // Register'd backends, re-added to every snapshot
	forced  string

	// epochMu guards epochCh, the broadcast channel WaitEpoch sleeps on:
	// every snapshot install closes the current channel (waking every
	// waiter to re-check the epoch) and replaces it with a fresh one.
	epochMu sync.Mutex
	epochCh chan struct{}
}

// customEngine remembers a DB.Register call so Apply can carry the
// backend into the next snapshot (rebinding it when it implements
// Rebinder).
type customEngine struct {
	engine   Engine
	routable bool
}

// Option configures Open.
type Option func(*dbConfig)

type dbConfig struct {
	engine       string
	tsdIdx       *TSDIndex
	gctIdx       *GCTIndex
	prepare      []string
	indexDir     string
	storeMode    StoreMode
	buildWorkers int
	resultCap    int
	resultCapSet bool
}

// StoreMode selects how a DB reads its persistent index store (see
// WithStoreMode). The zero value is StoreMmap.
type StoreMode int

const (
	// StoreMmap maps the index file read-only and serves array sections as
	// zero-copy views out of the page cache — warm starts touch O(1) bytes
	// per section instead of decoding the file, and N replicas of one graph
	// share a single physical copy of the index. Requires a format v3 file,
	// a little-endian host, and OS mmap support; anything else silently
	// degrades to decoding (StoreStatus.Mode reports what actually
	// happened).
	StoreMmap StoreMode = iota
	// StoreDecode reads and decodes sections into freshly allocated memory,
	// the pre-v3 behavior. Use it when the index file lives on storage that
	// cannot back a long-lived mapping (e.g. some network filesystems).
	StoreDecode
)

// String returns "mmap" or "decode".
func (m StoreMode) String() string {
	if m == StoreDecode {
		return "decode"
	}
	return "mmap"
}

// WithEngine pins every DB query to the named engine instead of cost
// routing. Open fails with *UnknownEngineError when no such engine is
// registered.
func WithEngine(name string) Option {
	return func(c *dbConfig) { c.engine = name }
}

// WithTSDIndex seeds the DB with an already-built TSD index (e.g. one
// deserialized with ReadTSDIndex), so the tsd engine is ready at once.
// The index must describe the graph being opened: Open validates it
// structurally and fails with *IndexMismatchError (matching
// errors.Is(err, ErrIndexMismatch)) when it was built from a different
// graph.
func WithTSDIndex(idx *TSDIndex) Option {
	return func(c *dbConfig) { c.tsdIdx = idx }
}

// WithGCTIndex seeds the DB with an already-built GCT index, so the gct
// (and, after one cheap ranking pass, hybrid) engine is ready at once.
// Validated against the graph like WithTSDIndex.
func WithGCTIndex(idx *GCTIndex) Option {
	return func(c *dbConfig) { c.gctIdx = idx }
}

// WithBuildWorkers sets the worker-pool size for parallel index
// construction — today the global truss decomposition, which cold builds
// and Prepare run as an h-index peeling sharded across the pool (the
// result is byte-identical to the serial peeling). 0 (the default) means
// GOMAXPROCS; 1 forces the serial bin-sort peeling. Query-time
// parallelism is per-query (Query.Workers), not this.
func WithBuildWorkers(n int) Option {
	return func(c *dbConfig) { c.buildWorkers = n }
}

// WithResultCache sets the capacity of the serving-side result cache,
// which memoizes TopR answers per (epoch, engine, query) and is
// invalidated wholesale by Apply's epoch bump — repeated dashboard
// queries between updates cost one lookup instead of a search. n <= 0
// disables the cache. The default capacity is 512 entries. Results
// served from the cache are byte-identical to a fresh computation
// (callers must treat Result values as immutable, which every built-in
// consumer already does).
func WithResultCache(n int) Option {
	return func(c *dbConfig) { c.resultCap = n; c.resultCapSet = true }
}

// Store options
//
// WithIndexDir connects the DB to its persistent index store and
// WithStoreMode picks how that store is read; DB.StoreStatus and
// DB.SaveIndexes complete the store surface.

// WithIndexDir connects the DB to a persistent index store in dir (the
// file is dir/indexes.tdx; build one offline with cmd/tsdindex or let the
// DB write it). On a cache miss the DB loads the needed index from the
// file instead of building it, and every index it does build from scratch
// is persisted back — so a redeployed server warm starts at load cost
// rather than build cost. A file whose fingerprint does not match g (or
// that is corrupt or from another format version) is never loaded: the DB
// falls back to building and StoreStatus reports the typed rejection
// (errors.Is against ErrStaleIndex, ErrIndexCorrupt, ErrIndexVersion).
// A warm file also restores the epoch counter it recorded, so epochs keep
// increasing across redeploys of an updated graph.
//
// Format v3 files are memory-mapped by default — see WithStoreMode.
func WithIndexDir(dir string) Option {
	return func(c *dbConfig) { c.indexDir = dir }
}

// WithStoreMode selects how the index store configured with WithIndexDir
// is read: StoreMmap (the default) serves zero-copy views over a
// read-only mapping of a format v3 file, StoreDecode forces the classic
// read-and-decode path. The mode never changes query results — answers
// are byte-identical either way — only where the index arrays live.
// Without WithIndexDir the option has no effect.
func WithStoreMode(m StoreMode) Option {
	return func(c *dbConfig) { c.storeMode = m }
}

// WithPreparedIndexes builds the named engines' indexes during Open
// instead of on first query; no names means everything Prepare covers
// (bound's truss decomposition plus the tsd, gct, and hybrid indexes).
// Use it in servers that prefer slow startup over a slow first request.
func WithPreparedIndexes(names ...string) Option {
	return func(c *dbConfig) {
		if len(names) == 0 {
			names = prepareAll
		}
		c.prepare = names
	}
}

// prepareAll is the default Prepare set: every truss engine whose
// readiness the index cache (and therefore the index store) manages. The
// native measure engines are prepared by explicit name ("comp", "kcore")
// so the default stays byte-compatible with pre-measure DBs.
var prepareAll = []string{"bound", "tsd", "gct", "hybrid"}

// batchPrepare is every name Batch may need to ready up front, in
// Prepare order.
var batchPrepare = []string{"bound", "tsd", "gct", "hybrid", "comp", "kcore", "pfree"}

// ErrIndexMismatch is the sentinel matched by errors.Is when an injected
// index (WithTSDIndex, WithGCTIndex) was built from a different graph
// than the one being opened; the concrete error is *IndexMismatchError.
var ErrIndexMismatch = errors.New("trussdiv: index does not match the graph")

// IndexMismatchError reports an injected index whose graph differs from
// the one Open was given — caught structurally at Open time (vertex and
// edge counts, then the graph fingerprint) rather than surfacing as a
// wrong answer at query time.
type IndexMismatchError struct {
	Index  string // "tsd" or "gct"
	Reason string
}

func (e *IndexMismatchError) Error() string {
	return fmt.Sprintf("trussdiv: injected %s index was built over a different graph: %s",
		e.Index, e.Reason)
}

// Is makes errors.Is(err, ErrIndexMismatch) match.
func (e *IndexMismatchError) Is(target error) bool { return target == ErrIndexMismatch }

// validateInjected checks an injected index's graph against g: pointer
// identity first (the common case, free), then vertex/edge counts, then
// the SHA-256 structure fingerprint — so a deserialized-elsewhere index
// over an equal graph is accepted while any structural difference is a
// typed error at Open.
func validateInjected(name string, idxG, g *Graph) error {
	if idxG == g {
		return nil
	}
	if idxG.N() != g.N() {
		return &IndexMismatchError{Index: name,
			Reason: fmt.Sprintf("index graph has %d vertices, opened graph has %d", idxG.N(), g.N())}
	}
	if idxG.M() != g.M() {
		return &IndexMismatchError{Index: name,
			Reason: fmt.Sprintf("index graph has %d edges, opened graph has %d", idxG.M(), g.M())}
	}
	if store.Fingerprint(idxG) != store.Fingerprint(g) {
		return &IndexMismatchError{Index: name,
			Reason: "graph fingerprints differ (same size, different edges)"}
	}
	return nil
}

// Open wraps g in a DB with the six built-in engines registered: online,
// bound, tsd, gct, hybrid (routable) and the comp/kcore baseline models
// (explicit-name only). Indexes are built lazily on first use unless
// provided (WithTSDIndex, WithGCTIndex) or prebuilt (WithPreparedIndexes).
// The DB starts at epoch 1 (or the epoch a warm index store recorded);
// Apply advances it.
func Open(g *Graph, opts ...Option) (*DB, error) {
	if g == nil {
		return nil, errors.New("trussdiv: Open: nil graph")
	}
	var cfg dbConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.tsdIdx != nil {
		if err := validateInjected("tsd", cfg.tsdIdx.Graph(), g); err != nil {
			return nil, err
		}
	}
	if cfg.gctIdx != nil {
		if err := validateInjected("gct", cfg.gctIdx.Graph(), g); err != nil {
			return nil, err
		}
	}

	cache := newIndexCache(g, cfg)
	epoch := Epoch(1)
	if stored := cache.storedEpoch(); stored > Epoch(0) {
		epoch = stored
	}
	snap, err := newSnapshot(epoch, g, cache, cfg.engine)
	if err != nil {
		return nil, err
	}
	db := &DB{forced: cfg.engine, epochCh: make(chan struct{})}
	resultCap := resultCacheDefaultCap
	if cfg.resultCapSet {
		resultCap = cfg.resultCap
	}
	db.results = newResultCache(resultCap)
	snap.results = db.results
	db.snap.Store(snap)
	if cfg.engine != "" {
		if _, err := snap.reg.lookup(cfg.engine); err != nil {
			return nil, err
		}
	}
	if cfg.prepare != nil {
		if err := snap.Prepare(context.Background(), cfg.prepare...); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Graph returns the graph of the DB's current snapshot.
func (db *DB) Graph() *Graph { return db.Snapshot().g }

// Engines lists the registered engine names in registration order.
func (db *DB) Engines() []string { return db.Snapshot().Engines() }

// Engine returns the named engine bound to the current snapshot; the
// error is a *UnknownEngineError (matching errors.Is(err,
// ErrUnknownEngine)) for unregistered names. The returned engine keeps
// serving its snapshot's graph across later Apply calls — re-fetch after
// applying updates to follow the newest graph.
func (db *DB) Engine(name string) (Engine, error) { return db.Snapshot().Engine(name) }

// Register adds a custom backend to the DB under e.Name(). Routable
// engines participate in cost routing and must compute the paper's
// truss-based diversity; non-routable ones answer only explicit-name
// queries (e.g. alternative diversity models). Registered engines are
// carried into every snapshot a later Apply produces; implement Rebinder
// to receive the edited graph at each transition.
func (db *DB) Register(e Engine, routable bool) error {
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	if err := db.snap.Load().reg.add(e, routable); err != nil {
		return err
	}
	db.custom = append(db.custom, customEngine{engine: e, routable: routable})
	return nil
}

// Route returns the routable engine of the current snapshot with the
// lowest cost estimate for q; see Snapshot.Route.
func (db *DB) Route(q Query) Engine { return db.Snapshot().Route(q) }

// TopR answers a top-r query through the cheapest (or pinned) engine of
// the current snapshot. The Result carries the snapshot's epoch; the
// Stats, when requested, name the engine that answered.
func (db *DB) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	return db.Snapshot().TopR(ctx, q)
}

// broadcastEpoch wakes every WaitEpoch sleeper after a snapshot install.
func (db *DB) broadcastEpoch() {
	db.epochMu.Lock()
	close(db.epochCh)
	db.epochCh = make(chan struct{})
	db.epochMu.Unlock()
}

// WaitEpoch blocks until the DB's current snapshot has reached at least
// the target epoch, returning that snapshot. It is the replication hook
// of the cluster tier: a shard worker that receives a query tagged with
// an epoch it has not applied yet parks here until the corresponding
// Apply lands (or ctx expires, in which case WaitEpoch returns ctx's
// error and the caller reports a typed stale-epoch failure). A target at
// or below the current epoch returns immediately — the returned
// snapshot's epoch may exceed the target when applies raced ahead.
func (db *DB) WaitEpoch(ctx context.Context, target Epoch) (*Snapshot, error) {
	for {
		// Grab the broadcast channel before checking the epoch: an Apply
		// that lands between the check and the wait closes the channel we
		// already hold, so the wakeup cannot be missed.
		db.epochMu.Lock()
		ch := db.epochCh
		db.epochMu.Unlock()
		if snap := db.Snapshot(); snap.epoch >= target {
			return snap, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

// Batch answers many queries in one pass against a single snapshot: every
// engine the batch needs is resolved up front, the indexes behind those
// engines are built once (before any query runs, so no query stalls on a
// build another triggered), and the queries then fan out across a pool of
// GOMAXPROCS goroutines. Results are positional: results[i] answers
// qs[i], each byte-identical to what TopR would return for the same
// query, and all stamped with one epoch — an Apply concurrent with a
// Batch never splits the batch across graph versions.
//
// Routing is batch-aware: an index build amortizes over the whole batch,
// so a batch of queries may route to an index engine where the same
// queries one at a time would have stayed on an index-free one. Per-query
// ViaEngine pins and the DB-level WithEngine default are honored as in
// TopR.
//
// Batch is all-or-nothing: the first error cancels the remaining queries
// and is returned with a nil slice. An empty batch returns (nil, nil).
//
// The batch fan-out is itself the parallel axis, so a query whose Workers
// field is 0 (the GOMAXPROCS default in TopR) runs serially inside the
// batch — concurrent queries each spawning a full worker pool would
// oversubscribe the CPU. An explicit Workers value (including negative
// for GOMAXPROCS) is honored as given.
func (db *DB) Batch(ctx context.Context, qs []Query) ([]*Result, error) {
	return db.Snapshot().Batch(ctx, qs)
}

// Batch answers many queries in one pass against this snapshot; see
// DB.Batch.
func (s *Snapshot) Batch(ctx context.Context, qs []Query) ([]*Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	engines, err := s.resolveBatch(qs)
	if err != nil {
		return nil, err
	}
	prepare := make(map[string]bool)
	for _, eng := range engines {
		switch name := eng.Name(); name {
		case "bound", "tsd", "gct", "hybrid", "comp", "kcore", "pfree":
			// comp/kcore: batch-aware routing may pick the native measure
			// engines on the strength of their amortized rankings build, so
			// the rankings must actually be built before the queries run.
			prepare[name] = true
		}
	}
	if len(prepare) > 0 {
		names := make([]string, 0, len(prepare))
		for _, name := range batchPrepare {
			if prepare[name] {
				names = append(names, name)
			}
		}
		if err := s.Prepare(ctx, names...); err != nil {
			return nil, err
		}
	}
	queries := make([]Query, len(qs))
	copy(queries, qs)
	for i := range queries {
		if queries[i].Workers == 0 {
			queries[i].Workers = 1
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*Result, len(qs))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	workers := min(runtime.GOMAXPROCS(0), len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// cachedTopR consults the result cache; Workers is not part
				// of the key (answers are byte-identical across worker
				// counts), so batch and single-query traffic share entries.
				res, _, err := s.cachedTopR(ctx, engines[i], queries[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// BatchEngines reports which engine Batch would answer each query with —
// the batch-aware routing decision — without running the queries. The
// HTTP /batch endpoint uses it to label responses.
func (db *DB) BatchEngines(qs []Query) ([]string, error) {
	return db.Snapshot().BatchEngines(qs)
}

// BatchEngines reports this snapshot's batch-aware routing decision
// without running the queries.
func (s *Snapshot) BatchEngines(qs []Query) ([]string, error) {
	engines, err := s.resolveBatch(qs)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(engines))
	for i, e := range engines {
		names[i] = e.Name()
	}
	return names, nil
}

// Score returns score(v) at threshold k on the current snapshot, reading
// the GCT index when one is built (O(log) per query) and computing online
// otherwise.
func (db *DB) Score(ctx context.Context, v, k int32) (int, error) {
	return db.Snapshot().Score(ctx, v, k)
}

// Contexts returns the social contexts SC(v) at threshold k on the
// current snapshot, using the same index-if-available strategy as Score.
func (db *DB) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	return db.Snapshot().Contexts(ctx, v, k)
}

// Prepare eagerly readies the named engines (default: bound, tsd, gct,
// hybrid) of the current snapshot: it loads each engine's accelerator
// from the index store when one is configured and holds it, and builds
// (then persists) otherwise. It observes ctx between builds — an
// individual build is not interruptible.
func (db *DB) Prepare(ctx context.Context, names ...string) error {
	return db.Snapshot().Prepare(ctx, names...)
}

// IndexStats describes the DB's index cache.
type IndexStats struct {
	TSDReady, GCTReady, HybridReady bool
	TauReady                        bool  // global truss decomposition cached
	TSDBytes, GCTBytes              int64 // 0 until the index is built
	// MeasureRankings lists the non-truss measures whose per-k rankings
	// are ready in memory (built by Prepare("comp"/"kcore") or loaded
	// from a v2 index store).
	MeasureRankings []Measure
	// PFreeRankings lists the measures whose parameter-free rankings are
	// ready in memory (Prepare("pfree"), a derivation on the query path,
	// or a store pfree section).
	PFreeRankings []Measure
	BuildTime     time.Duration
	LoadTime      time.Duration // time spent reading the index store
}

// IndexStats reports which indexes of the current snapshot are ready,
// their sizes, and the time spent building them (from the graph) and
// loading them (from the index store). After an Apply every in-memory
// structure normally survives repaired; one whose repair declined
// (region over budget) reports not-ready until its lazy rebuild.
func (db *DB) IndexStats() IndexStats { return db.Snapshot().IndexStats() }

// StoreStatus describes the DB's connection to its persistent index
// store (nothing is set when Open ran without WithIndexDir).
type StoreStatus struct {
	// Dir is the configured index directory; Path the index file in it.
	Dir, Path string
	// Warm reports that a validated index file is available, and Sections
	// names the parts it holds ("truss", "supports", "tsd", "gct",
	// "rankings", "epoch", "graph").
	Warm     bool
	Sections []string
	// FormatVersion is the on-disk format version of the warm file (1-3;
	// 0 when no file is loaded), and Mode is how the file is actually
	// being read — StoreMmap only when the mapping is live, StoreDecode
	// when the configured (or fallen-back-to) path decodes sections.
	FormatVersion uint32
	Mode          StoreMode
	// LoadErr is the typed reason an on-disk index was rejected or a
	// section read failed — match it with errors.Is against
	// ErrStaleIndex, ErrIndexVersion, ErrIndexCorrupt, or ErrNotIndexFile.
	// The DB has already fallen back to building when it is non-nil.
	LoadErr error
	// SaveErr is the most recent persist failure, nil when the last write
	// (if any) succeeded.
	SaveErr error
}

// StoreStatus reports the state of the persistent index store as seen by
// the current snapshot.
func (db *DB) StoreStatus() StoreStatus { return db.Snapshot().StoreStatus() }

// ResultCacheStats reports the serving-side result cache's counters:
// hits, misses, entries invalidated by Apply, and the current LRU
// occupancy. All-zero with Enabled false when Open disabled the cache
// via WithResultCache(0).
func (db *DB) ResultCacheStats() ResultCacheStats { return db.results.statsSnapshot() }

// SaveIndexes persists every index the current snapshot holds in memory —
// plus anything already in the index file — to the configured index
// directory, atomically replacing the file, and returns the path it
// wrote. The file is fingerprinted against the snapshot's graph and
// records its epoch, so calling it after Apply persists the post-update
// state (and makes the previous on-disk state unreadable for the old
// graph, by design). It builds nothing; call Prepare first to persist a
// complete set. Open must have been given WithIndexDir.
func (db *DB) SaveIndexes() (string, error) {
	c := db.Snapshot().cache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		return "", errors.New("trussdiv: SaveIndexes: no index directory configured (Open with WithIndexDir)")
	}
	c.persistLocked()
	if c.saveErr != nil {
		return "", c.saveErr
	}
	return store.PathIn(c.dir), nil
}

// TSDIndexHandle returns the current snapshot's TSD index, building it if
// necessary — for callers that persist indexes with WriteTo.
func (db *DB) TSDIndexHandle() *core.TSDIndex { return db.Snapshot().cache.tsdIndex() }

// GCTIndexHandle returns the current snapshot's GCT index, building it if
// necessary.
func (db *DB) GCTIndexHandle() *core.GCTIndex { return db.Snapshot().cache.gctIndex() }
