package trussdiv

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"trussdiv/internal/core"
	"trussdiv/internal/store"
)

// DB is the query facade over one graph: it owns the engine registry,
// lazily builds and caches the search indexes, and routes each query to
// the engine whose cost estimate is lowest (unless the caller pinned one
// with WithEngine). A DB is safe for concurrent use.
type DB struct {
	g      *Graph
	w      workload
	cache  *indexCache
	reg    *registry
	forced string
}

// Option configures Open.
type Option func(*dbConfig)

type dbConfig struct {
	engine   string
	tsdIdx   *TSDIndex
	gctIdx   *GCTIndex
	prepare  []string
	indexDir string
}

// WithEngine pins every DB query to the named engine instead of cost
// routing. Open fails with *UnknownEngineError when no such engine is
// registered.
func WithEngine(name string) Option {
	return func(c *dbConfig) { c.engine = name }
}

// WithTSDIndex seeds the DB with an already-built TSD index (e.g. one
// deserialized with ReadTSDIndex), so the tsd engine is ready at once.
func WithTSDIndex(idx *TSDIndex) Option {
	return func(c *dbConfig) { c.tsdIdx = idx }
}

// WithGCTIndex seeds the DB with an already-built GCT index, so the gct
// (and, after one cheap ranking pass, hybrid) engine is ready at once.
func WithGCTIndex(idx *GCTIndex) Option {
	return func(c *dbConfig) { c.gctIdx = idx }
}

// WithIndexDir connects the DB to a persistent index store in dir (the
// file is dir/indexes.tdx; build one offline with cmd/tsdindex or let the
// DB write it). On a cache miss the DB loads the needed index from the
// file instead of building it, and every index it does build from scratch
// is persisted back — so a redeployed server warm starts at load cost
// rather than build cost. A file whose fingerprint does not match g (or
// that is corrupt or from another format version) is never loaded: the DB
// falls back to building and StoreStatus reports the typed rejection
// (errors.Is against ErrStaleIndex, ErrIndexCorrupt, ErrIndexVersion).
func WithIndexDir(dir string) Option {
	return func(c *dbConfig) { c.indexDir = dir }
}

// WithPreparedIndexes builds the named engines' indexes during Open
// instead of on first query; no names means everything Prepare covers
// (bound's truss decomposition plus the tsd, gct, and hybrid indexes).
// Use it in servers that prefer slow startup over a slow first request.
func WithPreparedIndexes(names ...string) Option {
	return func(c *dbConfig) {
		if len(names) == 0 {
			names = prepareAll
		}
		c.prepare = names
	}
}

// prepareAll is the default Prepare set: every engine whose readiness the
// index cache (and therefore the index store) manages.
var prepareAll = []string{"bound", "tsd", "gct", "hybrid"}

// Open wraps g in a DB with the six built-in engines registered: online,
// bound, tsd, gct, hybrid (routable) and the comp/kcore baseline models
// (explicit-name only). Indexes are built lazily on first use unless
// provided (WithTSDIndex, WithGCTIndex) or prebuilt (WithPreparedIndexes).
func Open(g *Graph, opts ...Option) (*DB, error) {
	if g == nil {
		return nil, errors.New("trussdiv: Open: nil graph")
	}
	var cfg dbConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.tsdIdx != nil && cfg.tsdIdx.Graph() != g {
		return nil, errors.New("trussdiv: Open: TSD index was built over a different graph")
	}
	if cfg.gctIdx != nil && cfg.gctIdx.Graph() != g {
		return nil, errors.New("trussdiv: Open: GCT index was built over a different graph")
	}

	db := &DB{
		g:     g,
		w:     measure(g),
		cache: newIndexCache(g, cfg),
		reg:   newRegistry(),
	}
	for _, reg := range []struct {
		engine   Engine
		routable bool
	}{
		{newOnlineEngine(g, db.w), true},
		{newBoundEngine(g, db.w, db.cache), true},
		{&tsdEngine{cache: db.cache, w: db.w}, true},
		{&gctEngine{cache: db.cache, w: db.w}, true},
		{&hybridEngine{cache: db.cache, w: db.w}, true},
		{&baselineEngine{name: "comp", model: NewCompDiv(g), g: g, w: db.w}, false},
		{&baselineEngine{name: "kcore", model: NewCoreDiv(g), g: g, w: db.w}, false},
	} {
		if err := db.reg.add(reg.engine, reg.routable); err != nil {
			return nil, err
		}
	}
	if cfg.engine != "" {
		if _, err := db.reg.lookup(cfg.engine); err != nil {
			return nil, err
		}
		db.forced = cfg.engine
	}
	if cfg.prepare != nil {
		if err := db.Prepare(context.Background(), cfg.prepare...); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Graph returns the graph the DB serves.
func (db *DB) Graph() *Graph { return db.g }

// Engines lists the registered engine names in registration order.
func (db *DB) Engines() []string { return db.reg.names() }

// Engine returns the named engine; the error is a *UnknownEngineError
// (matching errors.Is(err, ErrUnknownEngine)) for unregistered names.
func (db *DB) Engine(name string) (Engine, error) { return db.reg.lookup(name) }

// Register adds a custom backend to the DB under e.Name(). Routable
// engines participate in cost routing and must compute the paper's
// truss-based diversity; non-routable ones answer only explicit-name
// queries (e.g. alternative diversity models).
func (db *DB) Register(e Engine, routable bool) error {
	return db.reg.add(e, routable)
}

// Route returns the routable engine with the lowest cost estimate for q,
// counting any index it would still have to build. Ties keep the earliest
// registered engine.
func (db *DB) Route(q Query) Engine {
	var best Engine
	bestCost := 0.0
	for _, e := range db.reg.routable() {
		if c := e.Cost(q).Total(); best == nil || c < bestCost {
			best, bestCost = e, c
		}
	}
	return best
}

// engineFor resolves the engine answering q: a per-query ViaEngine pin
// first, then the DB-level WithEngine pin, then the cheapest routable
// engine.
func (db *DB) engineFor(q Query) (Engine, error) {
	return db.routeAmortized(q, 1)
}

// TopR answers a top-r query through the cheapest (or pinned) engine.
// The Stats, when requested, name the engine that answered.
func (db *DB) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	eng, err := db.engineFor(q)
	if err != nil {
		return nil, nil, err
	}
	res, stats, err := eng.TopR(ctx, q)
	if stats != nil {
		stats.Engine = eng.Name()
	}
	return res, stats, err
}

// Batch answers many queries in one pass: every engine the batch needs is
// resolved up front, the indexes behind those engines are built once
// (before any query runs, so no query stalls on a build another triggered),
// and the queries then fan out across a pool of GOMAXPROCS goroutines.
// Results are positional: results[i] answers qs[i], each byte-identical to
// what TopR would return for the same query.
//
// Routing is batch-aware: an index build amortizes over the whole batch,
// so a batch of queries may route to an index engine where the same
// queries one at a time would have stayed on an index-free one. Per-query
// ViaEngine pins and the DB-level WithEngine default are honored as in
// TopR.
//
// Batch is all-or-nothing: the first error cancels the remaining queries
// and is returned with a nil slice. An empty batch returns (nil, nil).
//
// The batch fan-out is itself the parallel axis, so a query whose Workers
// field is 0 (the GOMAXPROCS default in TopR) runs serially inside the
// batch — concurrent queries each spawning a full worker pool would
// oversubscribe the CPU. An explicit Workers value (including negative
// for GOMAXPROCS) is honored as given.
func (db *DB) Batch(ctx context.Context, qs []Query) ([]*Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	engines, err := db.resolveBatch(qs)
	if err != nil {
		return nil, err
	}
	prepare := make(map[string]bool)
	for _, eng := range engines {
		switch name := eng.Name(); name {
		case "bound", "tsd", "gct", "hybrid":
			prepare[name] = true
		}
	}
	if len(prepare) > 0 {
		names := make([]string, 0, len(prepare))
		for _, name := range prepareAll {
			if prepare[name] {
				names = append(names, name)
			}
		}
		if err := db.Prepare(ctx, names...); err != nil {
			return nil, err
		}
	}
	queries := make([]Query, len(qs))
	copy(queries, qs)
	for i := range queries {
		if queries[i].Workers == 0 {
			queries[i].Workers = 1
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*Result, len(qs))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	workers := min(runtime.GOMAXPROCS(0), len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, _, err := engines[i].TopR(ctx, queries[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// BatchEngines reports which engine Batch would answer each query with —
// the batch-aware routing decision — without running the queries. The
// HTTP /batch endpoint uses it to label responses.
func (db *DB) BatchEngines(qs []Query) ([]string, error) {
	engines, err := db.resolveBatch(qs)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(engines))
	for i, e := range engines {
		names[i] = e.Name()
	}
	return names, nil
}

// resolveBatch resolves every query's engine with the index build cost
// amortized over the batch size.
func (db *DB) resolveBatch(qs []Query) ([]Engine, error) {
	engines := make([]Engine, len(qs))
	for i, q := range qs {
		eng, err := db.routeAmortized(q, len(qs))
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	return engines, nil
}

// routeAmortized is the single routing policy: per-query pin, then the
// DB-level pin, then the cheapest routable engine with the index build
// cost divided across batchSize queries (1 = the TopR single-query case,
// where the division is a no-op).
func (db *DB) routeAmortized(q Query, batchSize int) (Engine, error) {
	if q.Engine != "" {
		return db.reg.lookup(q.Engine)
	}
	if db.forced != "" {
		return db.reg.lookup(db.forced)
	}
	var best Engine
	bestCost := 0.0
	for _, e := range db.reg.routable() {
		est := e.Cost(q)
		c := est.Build/float64(batchSize) + est.Query
		if best == nil || c < bestCost {
			best, bestCost = e, c
		}
	}
	if best == nil {
		return nil, errors.New("trussdiv: no routable engine registered")
	}
	return best, nil
}

// Score returns score(v) at threshold k, reading the GCT index when one
// is built (O(log) per query) and computing online otherwise.
func (db *DB) Score(ctx context.Context, v, k int32) (int, error) {
	return db.pointEngine().Score(ctx, v, k)
}

// Contexts returns the social contexts SC(v) at threshold k, using the
// same index-if-available strategy as Score.
func (db *DB) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	return db.pointEngine().Contexts(ctx, v, k)
}

// pointEngine picks the engine for single-vertex queries: the pinned one,
// else gct once its index exists, else the online scorer.
func (db *DB) pointEngine() Engine {
	name := db.forced
	if name == "" {
		if db.cache.hasGCT() {
			name = "gct"
		} else {
			name = "online"
		}
	}
	e, err := db.reg.lookup(name)
	if err != nil { // unreachable: built-ins are always registered
		panic(err)
	}
	return e
}

// Prepare eagerly readies the named engines (default: bound, tsd, gct,
// hybrid): it loads each engine's accelerator from the index store when
// one is configured and holds it, and builds (then persists) otherwise.
// It observes ctx between builds — an individual build is not
// interruptible.
func (db *DB) Prepare(ctx context.Context, names ...string) error {
	if len(names) == 0 {
		names = prepareAll
	}
	// One store rewrite at the end instead of one per built accelerator.
	db.cache.beginDeferredPersist()
	defer db.cache.endDeferredPersist()
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch name {
		case "bound":
			// The bound engine's per-query sparsification reads the cached
			// global truss decomposition.
			db.cache.trussTau()
		case "tsd":
			db.cache.tsdIndex()
		case "gct":
			db.cache.gctIndex()
		case "hybrid":
			db.cache.hybridEngine()
		case "online", "comp", "kcore":
			// stateless engines: nothing to prepare
		default:
			if _, err := db.reg.lookup(name); err != nil {
				return err
			}
			return fmt.Errorf("trussdiv: Prepare: engine %q manages its own state", name)
		}
	}
	return nil
}

// IndexStats describes the DB's index cache.
type IndexStats struct {
	TSDReady, GCTReady, HybridReady bool
	TauReady                        bool  // global truss decomposition cached
	TSDBytes, GCTBytes              int64 // 0 until the index is built
	BuildTime                       time.Duration
	LoadTime                        time.Duration // time spent reading the index store
}

// IndexStats reports which indexes are ready, their sizes, and the time
// spent building them (from the graph) and loading them (from the index
// store).
func (db *DB) IndexStats() IndexStats {
	c := db.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	st := IndexStats{
		TSDReady:    c.tsd != nil,
		GCTReady:    c.gct != nil,
		HybridReady: c.hybrid != nil,
		TauReady:    c.tau != nil,
		BuildTime:   c.buildTime,
		LoadTime:    c.loadTime,
	}
	if c.tsd != nil {
		st.TSDBytes = c.tsd.SizeBytes()
	}
	if c.gct != nil {
		st.GCTBytes = c.gct.SizeBytes()
	}
	return st
}

// StoreStatus describes the DB's connection to its persistent index
// store (nothing is set when Open ran without WithIndexDir).
type StoreStatus struct {
	// Dir is the configured index directory; Path the index file in it.
	Dir, Path string
	// Warm reports that a validated index file is available, and Sections
	// names the parts it holds ("truss", "tsd", "gct", "rankings").
	Warm     bool
	Sections []string
	// LoadErr is the typed reason an on-disk index was rejected or a
	// section read failed — match it with errors.Is against
	// ErrStaleIndex, ErrIndexVersion, ErrIndexCorrupt, or ErrNotIndexFile.
	// The DB has already fallen back to building when it is non-nil.
	LoadErr error
	// SaveErr is the most recent persist failure, nil when the last write
	// (if any) succeeded.
	SaveErr error
}

// StoreStatus reports the state of the persistent index store.
func (db *DB) StoreStatus() StoreStatus {
	c := db.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StoreStatus{
		Dir:     c.dir,
		LoadErr: c.loadErr,
		SaveErr: c.saveErr,
	}
	if c.dir != "" {
		st.Path = store.PathIn(c.dir)
	}
	if c.file != nil {
		st.Warm = true
		for _, s := range c.file.Sections() {
			st.Sections = append(st.Sections, s.String())
		}
	}
	return st
}

// SaveIndexes persists every index the DB currently holds in memory —
// plus anything already in the index file — to the configured index
// directory, atomically replacing the file. It builds nothing; call
// Prepare first to persist a complete set. Open must have been given
// WithIndexDir.
func (db *DB) SaveIndexes() error {
	c := db.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		return errors.New("trussdiv: SaveIndexes: no index directory configured (Open with WithIndexDir)")
	}
	c.persistLocked()
	return c.saveErr
}

// TSDIndexHandle returns the cached TSD index, building it if necessary —
// for callers that persist indexes with WriteTo.
func (db *DB) TSDIndexHandle() *core.TSDIndex { return db.cache.tsdIndex() }

// GCTIndexHandle returns the cached GCT index, building it if necessary.
func (db *DB) GCTIndexHandle() *core.GCTIndex { return db.cache.gctIndex() }
