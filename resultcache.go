package trussdiv

import (
	"container/list"
	"sync"
)

// resultCache memoizes TopR answers at the serving layer. Entries are
// keyed by the full query identity PLUS the epoch of the snapshot that
// answered, so Apply invalidates the whole cache for free: the new
// snapshot's queries carry the new epoch and can never match an entry
// computed over the old graph, while a reader holding a pinned old
// Snapshot keeps hitting (or recomputing) its own epoch's entries and is
// never served a newer graph's answer. Apply additionally purges
// entries below the new epoch so a retired graph's answers do not sit in
// the LRU evicting live ones.
//
// Candidate sets are hashed into the key and stored verbatim: a hit
// requires the stored set to compare equal element-by-element, so a hash
// collision can cost a miss but never a wrong answer.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recent; values are *resultEntry
	entries map[resultKey]*list.Element

	hits, misses, invalidated uint64
	// Per-engine split of the same lookups, keyed by the resolved engine
	// name of the key — allocated lazily on first count.
	hitsByEngine, missesByEngine map[string]uint64
}

// resultKey identifies one cacheable query: the answering snapshot's
// epoch, the resolved engine, and every answer-shaping Query field.
// Workers is deliberately absent — answers are byte-identical for every
// worker count. SkipStats is present because it decides whether a Stats
// value was recorded alongside the Result. noK distinguishes a
// parameter-free query (K left at 0, the objective spans all k) from
// any fixed-k query: K = 0 and K = 1 are both unservable fixed-k values
// that never reach the cache, but folding the k-less case into a plain
// k field would make "no k" collide with a hypothetical k = 0 entry, so
// the axis is explicit.
type resultKey struct {
	epoch     Epoch
	engine    string
	measure   Measure
	k         int32
	noK       bool
	r         int
	contexts  bool
	skipStats bool
	hasCands  bool
	nCands    int
	candHash  uint64
}

type resultEntry struct {
	key   resultKey
	cands []int32 // the exact candidate set, for collision-proof hits
	res   *Result
	stats *Stats // nil when the query ran with SkipStats
}

// resultCacheDefaultCap bounds the LRU when Open is not given
// WithResultCache. Entries are small (r VertexScores plus optional
// contexts), so a few hundred covers a dashboard's working set.
const resultCacheDefaultCap = 512

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[resultKey]*list.Element),
	}
}

// resultCacheKey builds the cache key for q as answered by engine on the
// snapshot at epoch.
func resultCacheKey(epoch Epoch, engine string, q Query) resultKey {
	key := resultKey{
		epoch:     epoch,
		engine:    engine,
		measure:   q.Measure.Normalize(),
		k:         q.K,
		noK:       q.K == 0,
		r:         q.R,
		contexts:  q.IncludeContexts,
		skipStats: q.SkipStats,
		hasCands:  q.Candidates != nil,
		nCands:    len(q.Candidates),
	}
	if key.hasCands {
		// FNV-1a over the candidate IDs; collisions are tolerable (the
		// stored set is compared exactly) but should be rare.
		h := uint64(14695981039346656037)
		for _, v := range q.Candidates {
			h ^= uint64(uint32(v))
			h *= 1099511628211
		}
		key.candHash = h
	}
	return key
}

// get returns the cached answer for key, verifying the candidate set
// exactly. The Result is the stored pointer (treat results as
// immutable); the Stats is a copy the caller may stamp freely.
func (c *resultCache) get(key resultKey, cands []int32) (*Result, *Stats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if ok {
		e := el.Value.(*resultEntry)
		if sameCandidates(e.cands, cands) {
			c.lru.MoveToFront(el)
			c.hits++
			c.countByEngine(&c.hitsByEngine, key.engine)
			var stats *Stats
			if e.stats != nil {
				cp := *e.stats
				stats = &cp
			}
			return e.res, stats, true
		}
	}
	c.misses++
	c.countByEngine(&c.missesByEngine, key.engine)
	return nil, nil, false
}

// countByEngine bumps one engine's counter in a lazily allocated map.
// Callers must hold c.mu.
func (c *resultCache) countByEngine(m *map[string]uint64, engine string) {
	if *m == nil {
		*m = make(map[string]uint64)
	}
	(*m)[engine]++
}

// put records a computed answer, evicting the least recently used entry
// past capacity. The candidate slice is copied — callers may reuse
// theirs.
func (c *resultCache) put(key resultKey, cands []int32, res *Result, stats *Stats) {
	var statsCopy *Stats
	if stats != nil {
		cp := *stats
		statsCopy = &cp
	}
	e := &resultEntry{key: key, res: res, stats: statsCopy}
	if cands != nil {
		e.cands = append([]int32(nil), cands...)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		delete(c.entries, oldest.Value.(*resultEntry).key)
		c.lru.Remove(oldest)
	}
}

// invalidateBelow drops every entry whose epoch is below the given one —
// the Apply hook. Entries AT the epoch survive (there are none when the
// epoch is brand new, but the call is idempotent).
func (c *resultCache) invalidateBelow(epoch Epoch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*resultEntry); e.key.epoch < epoch {
			delete(c.entries, e.key)
			c.lru.Remove(el)
			c.invalidated++
		}
		el = next
	}
}

func sameCandidates(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// ResultCacheStats is a point-in-time view of the serving-side result
// cache; see DB.ResultCacheStats.
type ResultCacheStats struct {
	// Enabled is false when Open disabled the cache
	// (WithResultCache(0)); the counters are then all zero.
	Enabled bool
	// Hits and Misses count lookups; Invalidated counts entries purged
	// by Apply's epoch bump (LRU evictions are not counted).
	Hits, Misses, Invalidated uint64
	// HitsByEngine and MissesByEngine split the same lookups by the
	// engine the query resolved to (nil until the first lookup).
	HitsByEngine, MissesByEngine map[string]uint64
	// Size and Capacity describe the LRU: live entries and the bound.
	Size, Capacity int
}

func (c *resultCache) statsSnapshot() ResultCacheStats {
	if c == nil {
		return ResultCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Enabled:        true,
		Hits:           c.hits,
		Misses:         c.misses,
		Invalidated:    c.invalidated,
		HitsByEngine:   copyCounts(c.hitsByEngine),
		MissesByEngine: copyCounts(c.missesByEngine),
		Size:           c.lru.Len(),
		Capacity:       c.cap,
	}
}

func copyCounts(m map[string]uint64) map[string]uint64 {
	if m == nil {
		return nil
	}
	cp := make(map[string]uint64, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}
