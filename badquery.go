package trussdiv

import (
	"errors"
	"fmt"
)

// ErrBadQuery is the sentinel every *BadQueryError matches via
// errors.Is, so callers can branch on "the query itself was malformed
// for the engine it targeted" without matching message text.
var ErrBadQuery = errors.New("bad query")

// BadQueryError reports a query whose parameters are invalid for the
// engine that would serve it — today always the K contract: the fixed-k
// engines require K >= 2, the parameter-free engine (pfree) requires K
// to be left at 0. Engine is empty when the query failed validation
// before an engine was selected (e.g. K = 1, invalid for every engine).
type BadQueryError struct {
	// Engine is the engine the query was validated against ("" when the
	// failure is engine-independent).
	Engine string
	// K is the offending threshold value as given.
	K int32
	// Reason says what the contract wanted.
	Reason string
}

func (e *BadQueryError) Error() string {
	if e.Engine == "" {
		return fmt.Sprintf("trussdiv: bad query (k = %d): %s", e.K, e.Reason)
	}
	return fmt.Sprintf("trussdiv: bad query for engine %q (k = %d): %s", e.Engine, e.K, e.Reason)
}

// Is makes errors.Is(err, ErrBadQuery) match.
func (e *BadQueryError) Is(target error) bool { return target == ErrBadQuery }

// validateQueryK enforces the engine-aware K contract for a selected
// engine: parameter-free engines take no threshold (K must stay 0),
// every other engine requires K >= 2.
func validateQueryK(eng Engine, q Query) error {
	if isParameterFree(eng) {
		if q.K != 0 {
			return &BadQueryError{Engine: eng.Name(), K: q.K,
				Reason: "engine is parameter-free: leave k unset (0)"}
		}
		return nil
	}
	switch {
	case q.K == 0:
		return &BadQueryError{Engine: eng.Name(), K: q.K,
			Reason: "k is required (only parameter-free engines accept queries without k)"}
	case q.K < 2:
		return &BadQueryError{Engine: eng.Name(), K: q.K, Reason: "k must be >= 2"}
	}
	return nil
}
